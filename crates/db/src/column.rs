//! Typed column vectors with null bitmaps.
//!
//! Storage is one contiguous primitive vector per column — `Vec<i64>` for
//! ints, `Vec<f64>` for decimals, and `Vec<u32>` dictionary codes for
//! text/date/time (see [`crate::interner::SymbolTable`]) — plus a null
//! bitmap. Scans and join probes operate on these raw slices; an owned
//! [`Value`] is materialized only at projection boundaries.
//!
//! ## The compact join-key contract
//!
//! [`Column::join_key_in`] maps every non-null cell to a `u64` in a given
//! [`KeySpace`] such that two cells of join-compatible columns (as enforced
//! by [`crate::Catalog::add_foreign_key`]) are equal under the engine's
//! join semantics **iff** their keys *in a common space* are equal:
//!
//! * [`KeySpace::Int`] keys are the raw `i64` bit pattern — exact over the
//!   whole integer range. The database assigns this space to `Int` columns
//!   whose FK-connected component contains no `Decimal` column (the common
//!   case), fixing the >2⁵³ neighbor collisions of the `f64` view;
//! * [`KeySpace::F64`] keys are the bit pattern of the cell's `f64`
//!   numeric view (`-0.0` is normalized on insert), so an `Int` FK probes
//!   a `Decimal` PK index directly. Exact for |v| < 2⁵³; beyond that,
//!   neighboring integers share an `f64` image and therefore a key;
//! * [`KeySpace::Sym`] keys are the dictionary code, which the
//!   per-database interner keeps equal across tables for equal values.
//!
//! Hash join indexes, probe loops, and residual join checks all operate on
//! these keys; no `Value` is hashed or cloned on the validation hot path.
//! [`crate::Database::key_space`] records each column's assigned space.

use crate::interner::SymbolTable;
use crate::types::{DataType, KeySpace, Value, ValueRef};

/// The typed payload of one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    Int(Vec<i64>),
    Decimal(Vec<f64>),
    /// Dictionary codes into the database's [`SymbolTable`]
    /// (text/date/time columns).
    Sym(Vec<u32>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Decimal(v) => v.len(),
            ColumnData::Sym(v) => v.len(),
        }
    }
}

/// A fixed-size bitmap marking NULL rows. Rows are appended in order.
#[derive(Debug, Clone, Default)]
pub struct NullBitmap {
    words: Vec<u64>,
    len: usize,
    count: u32,
}

impl NullBitmap {
    fn push(&mut self, null: bool) {
        let word = self.len / 64;
        if word >= self.words.len() {
            self.words.push(0);
        }
        if null {
            self.words[word] |= 1u64 << (self.len % 64);
            self.count += 1;
        }
        self.len += 1;
    }

    #[inline]
    pub fn is_null(&self, row: usize) -> bool {
        debug_assert!(row < self.len);
        // Fast path: most columns have no NULLs at all, and `count` shares
        // a cache line with the words pointer.
        self.count != 0 && self.words[row / 64] >> (row % 64) & 1 == 1
    }

    /// Number of NULL rows.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// True when no row is NULL — lets scans skip the bitmap test.
    pub fn none_null(&self) -> bool {
        self.count == 0
    }
}

/// One typed column: declared type, primitive data vector, null bitmap.
/// NULL rows hold a placeholder in the data vector (0 / 0.0 / `u32::MAX`)
/// and are flagged in the bitmap.
#[derive(Debug, Clone)]
pub struct Column {
    dtype: DataType,
    data: ColumnData,
    nulls: NullBitmap,
    /// Largest symbol code stored in a `Sym` column (0 when empty). Bounds
    /// this column's code range without a scan — e.g. for sizing per-scan
    /// predicate memo bitmaps to the column, not the whole database.
    max_sym: u32,
}

/// Placeholder code stored in `Sym` columns at NULL rows.
const NULL_SYM: u32 = u32::MAX;

impl Column {
    /// An empty column of declared type `dtype`.
    pub fn new(dtype: DataType) -> Column {
        let data = match dtype {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Decimal => ColumnData::Decimal(Vec::new()),
            DataType::Text | DataType::Date | DataType::Time => ColumnData::Sym(Vec::new()),
        };
        Column {
            dtype,
            data,
            nulls: NullBitmap::default(),
            max_sym: 0,
        }
    }

    /// Upper bound (inclusive) of the symbol codes stored in this column;
    /// 0 for numeric or empty columns.
    pub fn max_sym_code(&self) -> u32 {
        self.max_sym
    }

    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw typed payload, for vectorized consumers (stats, discretizers).
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    pub fn nulls(&self) -> &NullBitmap {
        &self.nulls
    }

    #[inline]
    pub fn is_null(&self, row: usize) -> bool {
        self.nulls.is_null(row)
    }

    pub fn null_count(&self) -> u32 {
        self.nulls.count()
    }

    /// Append one cell. The value must already be validated against (and
    /// widened to) this column's type — [`crate::Table::push_row`] does so.
    pub(crate) fn push(&mut self, v: Value, syms: &mut SymbolTable) {
        match (&mut self.data, v) {
            (ColumnData::Int(vec), Value::Null) => {
                vec.push(0);
                self.nulls.push(true);
            }
            (ColumnData::Int(vec), Value::Int(i)) => {
                vec.push(i);
                self.nulls.push(false);
            }
            (ColumnData::Decimal(vec), Value::Null) => {
                vec.push(0.0);
                self.nulls.push(true);
            }
            (ColumnData::Decimal(vec), Value::Decimal(d)) => {
                // Normalize -0.0 so equal values share bit patterns (join
                // keys and stats both key on bits). `Value::decimal` does
                // this too, but raw `Value::Decimal(-0.0)` can reach us.
                vec.push(if d == 0.0 { 0.0 } else { d });
                self.nulls.push(false);
            }
            (ColumnData::Sym(vec), Value::Null) => {
                vec.push(NULL_SYM);
                self.nulls.push(true);
            }
            (ColumnData::Sym(vec), Value::Text(s)) => {
                let code = syms.intern_text_owned(s);
                self.max_sym = self.max_sym.max(code);
                vec.push(code);
                self.nulls.push(false);
            }
            (ColumnData::Sym(vec), Value::Date(d)) => {
                let code = syms.intern_date(d);
                self.max_sym = self.max_sym.max(code);
                vec.push(code);
                self.nulls.push(false);
            }
            (ColumnData::Sym(vec), Value::Time(t)) => {
                let code = syms.intern_time(t);
                self.max_sym = self.max_sym.max(code);
                vec.push(code);
                self.nulls.push(false);
            }
            (_, v) => unreachable!("push of {} into {} column", v.type_name(), self.dtype),
        }
    }

    /// Borrowed view of one cell. Zero-copy: text resolves through the
    /// interner without cloning.
    #[inline]
    pub fn value_ref<'a>(&'a self, syms: &'a SymbolTable, row: usize) -> ValueRef<'a> {
        if self.nulls.is_null(row) {
            return ValueRef::Null;
        }
        match &self.data {
            ColumnData::Int(v) => ValueRef::Int(v[row]),
            ColumnData::Decimal(v) => ValueRef::Decimal(v[row]),
            // Columns are homogeneous: the declared type names the symbol
            // kind, so resolution is one dense-vector load, no enum branch.
            ColumnData::Sym(v) => match self.dtype {
                DataType::Text => ValueRef::Text(syms.text(v[row])),
                DataType::Date => ValueRef::Date(syms.date(v[row])),
                DataType::Time => ValueRef::Time(syms.time(v[row])),
                _ => unreachable!("numeric columns are not dictionary-encoded"),
            },
        }
    }

    /// Iterate all cells as borrowed views, in row order.
    pub fn iter<'a>(
        &'a self,
        syms: &'a SymbolTable,
    ) -> impl ExactSizeIterator<Item = ValueRef<'a>> + 'a {
        (0..self.len()).map(move |r| self.value_ref(syms, r))
    }

    /// Compact join key of one cell in the column's *native* key space
    /// (`None` for NULL). Prefer [`crate::Database::join_key`], which keys
    /// in the column's FK-component-assigned space — the two differ only
    /// for `Int` columns demoted to [`KeySpace::F64`] by a `Decimal`
    /// join partner.
    #[inline]
    pub fn join_key(&self, row: usize) -> Option<u64> {
        self.join_key_in(row, self.dtype.native_key_space())
    }

    /// Compact join key of one cell in `space` (`None` for NULL). See the
    /// module docs for the key contract. `space` must be one the column's
    /// data can key in: [`KeySpace::Int`] is only valid for `Int` columns
    /// (a `Decimal` column is never `Int`-spaced).
    #[inline]
    pub fn join_key_in(&self, row: usize, space: KeySpace) -> Option<u64> {
        if self.nulls.is_null(row) {
            return None;
        }
        Some(match (&self.data, space) {
            (ColumnData::Int(v), KeySpace::Int) => v[row] as u64,
            (ColumnData::Int(v), KeySpace::F64) => (v[row] as f64).to_bits(),
            (ColumnData::Decimal(v), KeySpace::F64) => v[row].to_bits(),
            (ColumnData::Sym(v), KeySpace::Sym) => v[row] as u64,
            _ => unreachable!("column data cannot key in {space:?}"),
        })
    }

    /// The symbol code of one cell of a dictionary column (`None` for NULL).
    /// Panics on numeric columns.
    pub fn sym(&self, row: usize) -> Option<u32> {
        match &self.data {
            ColumnData::Sym(v) => (!self.nulls.is_null(row)).then(|| v[row]),
            _ => panic!("sym() on a numeric column"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Date;

    #[test]
    fn null_bitmap_tracks_positions_and_count() {
        let mut b = NullBitmap::default();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.count(), 44);
        assert!(b.is_null(0));
        assert!(!b.is_null(1));
        assert!(b.is_null(129));
        assert!(!b.none_null());
    }

    #[test]
    fn int_column_join_keys_match_decimal_column_in_f64_space() {
        let mut syms = SymbolTable::new();
        let mut ci = Column::new(DataType::Int);
        let mut cd = Column::new(DataType::Decimal);
        ci.push(Value::Int(497), &mut syms);
        cd.push(Value::Decimal(497.0), &mut syms);
        // F64 is the common space of an Int↔Decimal comparison.
        assert_eq!(
            ci.join_key_in(0, KeySpace::F64),
            cd.join_key_in(0, KeySpace::F64)
        );
        ci.push(Value::Null, &mut syms);
        assert_eq!(ci.join_key(1), None);
        assert_eq!(ci.join_key_in(1, KeySpace::F64), None);
    }

    #[test]
    fn int_space_keys_are_exact_beyond_f64_precision() {
        let mut syms = SymbolTable::new();
        let mut c = Column::new(DataType::Int);
        c.push(Value::Int(i64::MAX), &mut syms);
        c.push(Value::Int(i64::MAX - 1), &mut syms);
        // The f64 view conflates the neighbors; the Int space keeps them
        // apart (this is the whole point of the Int key space).
        assert_eq!(
            c.join_key_in(0, KeySpace::F64),
            c.join_key_in(1, KeySpace::F64)
        );
        assert_ne!(
            c.join_key_in(0, KeySpace::Int),
            c.join_key_in(1, KeySpace::Int)
        );
        // Native space of an Int column is Int.
        assert_eq!(c.join_key(0), c.join_key_in(0, KeySpace::Int));
    }

    #[test]
    fn sym_column_resolves_through_interner() {
        let mut syms = SymbolTable::new();
        let mut a = Column::new(DataType::Text);
        let mut b = Column::new(DataType::Text);
        a.push(Value::text("Lake Tahoe"), &mut syms);
        b.push(Value::text("Lake Tahoe"), &mut syms);
        b.push(Value::Null, &mut syms);
        // Same value, same key — across distinct columns.
        assert_eq!(a.join_key(0), b.join_key(0));
        assert_eq!(a.value_ref(&syms, 0), ValueRef::Text("Lake Tahoe"));
        assert_eq!(b.value_ref(&syms, 1), ValueRef::Null);
        assert_eq!(b.sym(1), None);
    }

    #[test]
    fn negative_zero_normalizes_on_insert() {
        let mut syms = SymbolTable::new();
        let mut a = Column::new(DataType::Decimal);
        let mut b = Column::new(DataType::Decimal);
        // Raw Value::Decimal(-0.0) bypasses Value::decimal's normalization;
        // the column must normalize anyway so bit-keyed joins and stats see
        // one zero.
        a.push(Value::Decimal(-0.0), &mut syms);
        b.push(Value::Decimal(0.0), &mut syms);
        assert_eq!(a.join_key(0), b.join_key(0));
        assert_eq!(a.value_ref(&syms, 0), ValueRef::Decimal(0.0));
    }

    #[test]
    fn date_column_is_dictionary_encoded() {
        let mut syms = SymbolTable::new();
        let mut c = Column::new(DataType::Date);
        let d = Date::new(2000, 1, 1);
        c.push(Value::Date(d), &mut syms);
        c.push(Value::Date(d), &mut syms);
        assert_eq!(c.sym(0), c.sym(1));
        assert_eq!(c.value_ref(&syms, 0), ValueRef::Date(d));
        assert_eq!(syms.len(), 1);
    }
}
