//! Typed column vectors with null bitmaps.
//!
//! Storage is one contiguous primitive vector per column — `Vec<i64>` for
//! ints, `Vec<f64>` for decimals, and `Vec<u32>` dictionary codes for
//! text/date/time (see [`crate::interner::SymbolTable`]) — plus a null
//! bitmap. Scans and join probes operate on these raw slices; an owned
//! [`Value`] is materialized only at projection boundaries.
//!
//! ## The compact join-key contract
//!
//! [`Column::join_key_in`] maps every non-null cell to a `u64` in a given
//! [`KeySpace`] such that two cells of join-compatible columns (as enforced
//! by [`crate::Catalog::add_foreign_key`]) are equal under the engine's
//! join semantics **iff** their keys *in a common space* are equal:
//!
//! * [`KeySpace::Int`] keys are the raw `i64` bit pattern — exact over the
//!   whole integer range. The database assigns this space to `Int` columns
//!   whose FK-connected component contains no `Decimal` column (the common
//!   case), fixing the >2⁵³ neighbor collisions of the `f64` view;
//! * [`KeySpace::F64`] keys are the bit pattern of the cell's `f64`
//!   numeric view (`-0.0` is normalized on insert), so an `Int` FK probes
//!   a `Decimal` PK index directly. Exact for |v| < 2⁵³; beyond that,
//!   neighboring integers share an `f64` image and therefore a key;
//! * [`KeySpace::Sym`] keys are the dictionary code, which the
//!   per-database interner keeps equal across tables for equal values.
//!
//! Hash join indexes, probe loops, and residual join checks all operate on
//! these keys; no `Value` is hashed or cloned on the validation hot path.
//! [`crate::Database::key_space`] records each column's assigned space.
//!
//! ## Block zone maps
//!
//! When a database freezes, every column is partitioned into fixed-size row
//! blocks ([`crate::Database::block_rows`], `PRISM_BLOCK_ROWS`) and one
//! [`BlockMeta`] is computed per block: min/max over the non-NULL values for
//! `Int`/`Decimal` columns (NaN tracked separately so bit-equality key
//! probes stay sound), and the code range plus a 64-bit code fingerprint for
//! dictionary columns. The executor consults these through
//! [`Column::block_may_contain_key`] / [`Column::block_may_overlap_range`]
//! to skip whole blocks before touching a row; both tests are conservative
//! (`false` proves the block holds no matching row, `true` proves nothing).

use crate::interner::SymbolTable;
use crate::types::{DataType, KeySpace, Value, ValueRef};

/// The typed payload of one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    Int(Vec<i64>),
    Decimal(Vec<f64>),
    /// Dictionary codes into the database's [`SymbolTable`]
    /// (text/date/time columns).
    Sym(Vec<u32>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Decimal(v) => v.len(),
            ColumnData::Sym(v) => v.len(),
        }
    }
}

/// A fixed-size bitmap marking NULL rows. Rows are appended in order.
#[derive(Debug, Clone, Default)]
pub struct NullBitmap {
    words: Vec<u64>,
    len: usize,
    count: u32,
}

impl NullBitmap {
    fn push(&mut self, null: bool) {
        let word = self.len / 64;
        if word >= self.words.len() {
            self.words.push(0);
        }
        if null {
            self.words[word] |= 1u64 << (self.len % 64);
            self.count += 1;
        }
        self.len += 1;
    }

    #[inline]
    pub fn is_null(&self, row: usize) -> bool {
        debug_assert!(row < self.len);
        // Fast path: most columns have no NULLs at all, and `count` shares
        // a cache line with the words pointer.
        self.count != 0 && self.words[row / 64] >> (row % 64) & 1 == 1
    }

    /// Number of NULL rows.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// True when no row is NULL — lets scans skip the bitmap test.
    pub fn none_null(&self) -> bool {
        self.count == 0
    }
}

/// Zone summary of one row block (see the module docs). Only non-NULL rows
/// contribute; an all-NULL block is [`Zone::AllNull`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Zone {
    /// Every row of the block is NULL — no key or range can match.
    AllNull,
    /// Min/max of the non-NULL `i64` values in the block.
    Int { min: i64, max: i64 },
    /// Min/max of the non-NULL, non-NaN `f64` values in the block
    /// (`-0.0` is normalized on insert, so zero is unambiguous). `has_nan`
    /// keeps bit-equality key probes sound: a NaN key can only match inside
    /// a block that stored a NaN.
    Dec { min: f64, max: f64, has_nan: bool },
    /// Code range of the non-NULL dictionary codes in the block, plus a
    /// 64-bit fingerprint with bit `code % 64` set per distinct code — a
    /// one-word "is this code possibly here?" filter on top of the range.
    Sym { min: u32, max: u32, mask: u64 },
}

/// Per-block metadata: the value zone plus a has-NULL bit (lets consumers
/// skip the null-bitmap test inside all-non-NULL blocks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockMeta {
    pub has_null: bool,
    pub zone: Zone,
}

/// One typed column: declared type, primitive data vector, null bitmap.
/// NULL rows hold a placeholder in the data vector (0 / 0.0 / `u32::MAX`)
/// and are flagged in the bitmap.
#[derive(Debug, Clone)]
pub struct Column {
    dtype: DataType,
    data: ColumnData,
    nulls: NullBitmap,
    /// Largest symbol code stored in a `Sym` column (0 when empty). Bounds
    /// this column's code range without a scan — e.g. for sizing per-scan
    /// predicate memo bitmaps to the column, not the whole database.
    max_sym: u32,
    /// Zone maps, one per `block_rows`-sized block. Empty until
    /// [`Column::freeze_blocks`] runs (the database freeze does so).
    blocks: Vec<BlockMeta>,
    /// Rows per block; 0 until frozen.
    block_rows: u32,
}

/// Placeholder code stored in `Sym` columns at NULL rows.
const NULL_SYM: u32 = u32::MAX;

impl Column {
    /// An empty column of declared type `dtype`.
    pub fn new(dtype: DataType) -> Column {
        let data = match dtype {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Decimal => ColumnData::Decimal(Vec::new()),
            DataType::Text | DataType::Date | DataType::Time => ColumnData::Sym(Vec::new()),
        };
        Column {
            dtype,
            data,
            nulls: NullBitmap::default(),
            max_sym: 0,
            blocks: Vec::new(),
            block_rows: 0,
        }
    }

    /// Upper bound (inclusive) of the symbol codes stored in this column;
    /// 0 for numeric or empty columns.
    pub fn max_sym_code(&self) -> u32 {
        self.max_sym
    }

    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw typed payload, for vectorized consumers (stats, discretizers).
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    pub fn nulls(&self) -> &NullBitmap {
        &self.nulls
    }

    #[inline]
    pub fn is_null(&self, row: usize) -> bool {
        self.nulls.is_null(row)
    }

    pub fn null_count(&self) -> u32 {
        self.nulls.count()
    }

    /// Append one cell. The value must already be validated against (and
    /// widened to) this column's type — [`crate::Table::push_row`] does so.
    pub(crate) fn push(&mut self, v: Value, syms: &mut SymbolTable) {
        if !self.blocks.is_empty() {
            // Freeze is the last thing to happen to a column, but a mutation
            // must never leave stale zone maps behind.
            self.blocks.clear();
            self.block_rows = 0;
        }
        match (&mut self.data, v) {
            (ColumnData::Int(vec), Value::Null) => {
                vec.push(0);
                self.nulls.push(true);
            }
            (ColumnData::Int(vec), Value::Int(i)) => {
                vec.push(i);
                self.nulls.push(false);
            }
            (ColumnData::Decimal(vec), Value::Null) => {
                vec.push(0.0);
                self.nulls.push(true);
            }
            (ColumnData::Decimal(vec), Value::Decimal(d)) => {
                // Normalize -0.0 so equal values share bit patterns (join
                // keys and stats both key on bits). `Value::decimal` does
                // this too, but raw `Value::Decimal(-0.0)` can reach us.
                vec.push(if d == 0.0 { 0.0 } else { d });
                self.nulls.push(false);
            }
            (ColumnData::Sym(vec), Value::Null) => {
                vec.push(NULL_SYM);
                self.nulls.push(true);
            }
            (ColumnData::Sym(vec), Value::Text(s)) => {
                let code = syms.intern_text_owned(s);
                self.max_sym = self.max_sym.max(code);
                vec.push(code);
                self.nulls.push(false);
            }
            (ColumnData::Sym(vec), Value::Date(d)) => {
                let code = syms.intern_date(d);
                self.max_sym = self.max_sym.max(code);
                vec.push(code);
                self.nulls.push(false);
            }
            (ColumnData::Sym(vec), Value::Time(t)) => {
                let code = syms.intern_time(t);
                self.max_sym = self.max_sym.max(code);
                vec.push(code);
                self.nulls.push(false);
            }
            (_, v) => unreachable!("push of {} into {} column", v.type_name(), self.dtype),
        }
    }

    /// Borrowed view of one cell. Zero-copy: text resolves through the
    /// interner without cloning.
    #[inline]
    pub fn value_ref<'a>(&'a self, syms: &'a SymbolTable, row: usize) -> ValueRef<'a> {
        if self.nulls.is_null(row) {
            return ValueRef::Null;
        }
        match &self.data {
            ColumnData::Int(v) => ValueRef::Int(v[row]),
            ColumnData::Decimal(v) => ValueRef::Decimal(v[row]),
            // Columns are homogeneous: the declared type names the symbol
            // kind, so resolution is one dense-vector load, no enum branch.
            ColumnData::Sym(v) => match self.dtype {
                DataType::Text => ValueRef::Text(syms.text(v[row])),
                DataType::Date => ValueRef::Date(syms.date(v[row])),
                DataType::Time => ValueRef::Time(syms.time(v[row])),
                _ => unreachable!("numeric columns are not dictionary-encoded"),
            },
        }
    }

    /// Iterate all cells as borrowed views, in row order.
    pub fn iter<'a>(
        &'a self,
        syms: &'a SymbolTable,
    ) -> impl ExactSizeIterator<Item = ValueRef<'a>> + 'a {
        (0..self.len()).map(move |r| self.value_ref(syms, r))
    }

    /// Compact join key of one cell in the column's *native* key space
    /// (`None` for NULL). Prefer [`crate::Database::join_key`], which keys
    /// in the column's FK-component-assigned space — the two differ only
    /// for `Int` columns demoted to [`KeySpace::F64`] by a `Decimal`
    /// join partner.
    #[inline]
    pub fn join_key(&self, row: usize) -> Option<u64> {
        self.join_key_in(row, self.dtype.native_key_space())
    }

    /// Compact join key of one cell in `space` (`None` for NULL). See the
    /// module docs for the key contract. `space` must be one the column's
    /// data can key in: [`KeySpace::Int`] is only valid for `Int` columns
    /// (a `Decimal` column is never `Int`-spaced).
    #[inline]
    pub fn join_key_in(&self, row: usize, space: KeySpace) -> Option<u64> {
        if self.nulls.is_null(row) {
            return None;
        }
        Some(match (&self.data, space) {
            (ColumnData::Int(v), KeySpace::Int) => v[row] as u64,
            (ColumnData::Int(v), KeySpace::F64) => (v[row] as f64).to_bits(),
            (ColumnData::Decimal(v), KeySpace::F64) => v[row].to_bits(),
            (ColumnData::Sym(v), KeySpace::Sym) => v[row] as u64,
            _ => unreachable!("column data cannot key in {space:?}"),
        })
    }

    /// The symbol code of one cell of a dictionary column (`None` for NULL).
    /// Panics on numeric columns.
    pub fn sym(&self, row: usize) -> Option<u32> {
        match &self.data {
            ColumnData::Sym(v) => (!self.nulls.is_null(row)).then(|| v[row]),
            _ => panic!("sym() on a numeric column"),
        }
    }

    /// (Re)compute the per-block zone maps at `block_rows` rows per block.
    /// Called once when the owning database freezes; idempotent.
    pub(crate) fn freeze_blocks(&mut self, block_rows: usize) {
        debug_assert!(block_rows > 0);
        self.block_rows = block_rows as u32;
        let n = self.len();
        self.blocks.clear();
        self.blocks.reserve(n.div_ceil(block_rows));
        for start in (0..n).step_by(block_rows) {
            let end = (start + block_rows).min(n);
            let mut has_null = false;
            let mut zone = Zone::AllNull;
            for r in start..end {
                if self.nulls.is_null(r) {
                    has_null = true;
                    continue;
                }
                zone = match (&self.data, zone) {
                    (ColumnData::Int(v), Zone::AllNull) => Zone::Int {
                        min: v[r],
                        max: v[r],
                    },
                    (ColumnData::Int(v), Zone::Int { min, max }) => Zone::Int {
                        min: min.min(v[r]),
                        max: max.max(v[r]),
                    },
                    (ColumnData::Decimal(v), z) => {
                        let (mut min, mut max, mut has_nan) = match z {
                            Zone::Dec { min, max, has_nan } => (min, max, has_nan),
                            // Empty range auto-fails every overlap test
                            // until a finite value lands in the block.
                            _ => (f64::INFINITY, f64::NEG_INFINITY, false),
                        };
                        let x = v[r];
                        if x.is_nan() {
                            has_nan = true;
                        } else {
                            min = min.min(x);
                            max = max.max(x);
                        }
                        Zone::Dec { min, max, has_nan }
                    }
                    (ColumnData::Sym(v), Zone::AllNull) => Zone::Sym {
                        min: v[r],
                        max: v[r],
                        mask: 1u64 << (v[r] % 64),
                    },
                    (ColumnData::Sym(v), Zone::Sym { min, max, mask }) => Zone::Sym {
                        min: min.min(v[r]),
                        max: max.max(v[r]),
                        mask: mask | 1u64 << (v[r] % 64),
                    },
                    (_, z) => unreachable!("zone kind flipped mid-column: {z:?}"),
                };
            }
            self.blocks.push(BlockMeta { has_null, zone });
        }
    }

    /// Rows per zone-map block (`None` before the database freeze).
    #[inline]
    pub fn block_rows(&self) -> Option<usize> {
        (self.block_rows > 0).then_some(self.block_rows as usize)
    }

    /// Per-block zone maps (empty before the database freeze).
    pub fn block_meta(&self) -> &[BlockMeta] {
        &self.blocks
    }

    /// Can any row of block `b` carry compact join key `key` in `space`?
    /// Conservative: `false` proves absence, `true` proves nothing. Blocks
    /// are `block_rows()` rows; `b` must be in range once frozen.
    #[inline]
    pub fn block_may_contain_key(&self, b: usize, key: u64, space: KeySpace) -> bool {
        let Some(meta) = self.blocks.get(b) else {
            return true; // not frozen: nothing provable
        };
        match (meta.zone, space) {
            (Zone::AllNull, _) => false, // NULL rows never carry a key
            (Zone::Int { min, max }, KeySpace::Int) => {
                let k = key as i64;
                min <= k && k <= max
            }
            (Zone::Int { min, max }, KeySpace::F64) => {
                // The key is `(v as f64).to_bits()` of some i64 v. i64→f64
                // conversion is monotone, so the f64 images of the block's
                // values all lie in [min as f64, max as f64] — exact, no
                // rounding margin needed.
                let f = f64::from_bits(key);
                (min as f64) <= f && f <= (max as f64)
            }
            (Zone::Dec { min, max, has_nan }, KeySpace::F64) => {
                let f = f64::from_bits(key);
                if f.is_nan() {
                    // Keys compare by bit pattern, so a NaN key can match a
                    // stored NaN; only a NaN-free block is provably clear.
                    has_nan
                } else {
                    min <= f && f <= max
                }
            }
            (Zone::Sym { min, max, mask }, KeySpace::Sym) => {
                let code = key as u32;
                min <= code && code <= max && mask >> (code % 64) & 1 == 1
            }
            (z, s) => unreachable!("zone {z:?} probed in space {s:?}"),
        }
    }

    /// Can any non-NULL numeric row of block `b` lie in the closed interval
    /// `[lo, hi]`? Conservative like [`Column::block_may_contain_key`];
    /// always `true` for dictionary columns (ranges don't apply to codes).
    /// NaN rows can never satisfy a range, so they are ignored here.
    #[inline]
    pub fn block_may_overlap_range(&self, b: usize, lo: f64, hi: f64) -> bool {
        let Some(meta) = self.blocks.get(b) else {
            return true;
        };
        match meta.zone {
            Zone::AllNull => false,
            // i64→f64 conversion is monotone and `lo`/`hi` are exactly
            // representable, so `(max as f64) < lo` implies `max < lo` (and
            // symmetrically) — the integer test needs no rounding margin.
            Zone::Int { min, max } => !((max as f64) < lo || (min as f64) > hi),
            Zone::Dec { min, max, .. } => !(max < lo || min > hi),
            Zone::Sym { .. } => true,
        }
    }

    /// Heap bytes held by this column's data vector, null bitmap, and zone
    /// maps (content, not capacity — the auditable payload).
    pub fn heap_bytes(&self) -> usize {
        let data = match &self.data {
            ColumnData::Int(v) => v.len() * std::mem::size_of::<i64>(),
            ColumnData::Decimal(v) => v.len() * std::mem::size_of::<f64>(),
            ColumnData::Sym(v) => v.len() * std::mem::size_of::<u32>(),
        };
        data + self.nulls.words.len() * 8 + self.blocks.len() * std::mem::size_of::<BlockMeta>()
    }

    /// Zone-map bytes alone (part of [`Column::heap_bytes`]).
    pub fn zone_map_bytes(&self) -> usize {
        self.blocks.len() * std::mem::size_of::<BlockMeta>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Date;

    #[test]
    fn null_bitmap_tracks_positions_and_count() {
        let mut b = NullBitmap::default();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.count(), 44);
        assert!(b.is_null(0));
        assert!(!b.is_null(1));
        assert!(b.is_null(129));
        assert!(!b.none_null());
    }

    #[test]
    fn int_column_join_keys_match_decimal_column_in_f64_space() {
        let mut syms = SymbolTable::new();
        let mut ci = Column::new(DataType::Int);
        let mut cd = Column::new(DataType::Decimal);
        ci.push(Value::Int(497), &mut syms);
        cd.push(Value::Decimal(497.0), &mut syms);
        // F64 is the common space of an Int↔Decimal comparison.
        assert_eq!(
            ci.join_key_in(0, KeySpace::F64),
            cd.join_key_in(0, KeySpace::F64)
        );
        ci.push(Value::Null, &mut syms);
        assert_eq!(ci.join_key(1), None);
        assert_eq!(ci.join_key_in(1, KeySpace::F64), None);
    }

    #[test]
    fn int_space_keys_are_exact_beyond_f64_precision() {
        let mut syms = SymbolTable::new();
        let mut c = Column::new(DataType::Int);
        c.push(Value::Int(i64::MAX), &mut syms);
        c.push(Value::Int(i64::MAX - 1), &mut syms);
        // The f64 view conflates the neighbors; the Int space keeps them
        // apart (this is the whole point of the Int key space).
        assert_eq!(
            c.join_key_in(0, KeySpace::F64),
            c.join_key_in(1, KeySpace::F64)
        );
        assert_ne!(
            c.join_key_in(0, KeySpace::Int),
            c.join_key_in(1, KeySpace::Int)
        );
        // Native space of an Int column is Int.
        assert_eq!(c.join_key(0), c.join_key_in(0, KeySpace::Int));
    }

    #[test]
    fn sym_column_resolves_through_interner() {
        let mut syms = SymbolTable::new();
        let mut a = Column::new(DataType::Text);
        let mut b = Column::new(DataType::Text);
        a.push(Value::text("Lake Tahoe"), &mut syms);
        b.push(Value::text("Lake Tahoe"), &mut syms);
        b.push(Value::Null, &mut syms);
        // Same value, same key — across distinct columns.
        assert_eq!(a.join_key(0), b.join_key(0));
        assert_eq!(a.value_ref(&syms, 0), ValueRef::Text("Lake Tahoe"));
        assert_eq!(b.value_ref(&syms, 1), ValueRef::Null);
        assert_eq!(b.sym(1), None);
    }

    #[test]
    fn negative_zero_normalizes_on_insert() {
        let mut syms = SymbolTable::new();
        let mut a = Column::new(DataType::Decimal);
        let mut b = Column::new(DataType::Decimal);
        // Raw Value::Decimal(-0.0) bypasses Value::decimal's normalization;
        // the column must normalize anyway so bit-keyed joins and stats see
        // one zero.
        a.push(Value::Decimal(-0.0), &mut syms);
        b.push(Value::Decimal(0.0), &mut syms);
        assert_eq!(a.join_key(0), b.join_key(0));
        assert_eq!(a.value_ref(&syms, 0), ValueRef::Decimal(0.0));
    }

    #[test]
    fn int_zone_maps_bound_blocks_and_prune_keys_and_ranges() {
        let mut syms = SymbolTable::new();
        let mut c = Column::new(DataType::Int);
        for v in [5i64, -3, 9, 100, 200, 150] {
            c.push(Value::Int(v), &mut syms);
        }
        c.freeze_blocks(3);
        assert_eq!(c.block_rows(), Some(3));
        assert_eq!(c.block_meta().len(), 2);
        assert_eq!(c.block_meta()[0].zone, Zone::Int { min: -3, max: 9 },);
        // Key pruning in the Int space.
        assert!(c.block_may_contain_key(0, 5i64 as u64, KeySpace::Int));
        assert!(!c.block_may_contain_key(0, 100i64 as u64, KeySpace::Int));
        assert!(c.block_may_contain_key(1, 100i64 as u64, KeySpace::Int));
        // ...and through the f64 view.
        assert!(c.block_may_contain_key(0, (5f64).to_bits(), KeySpace::F64));
        assert!(!c.block_may_contain_key(0, (100f64).to_bits(), KeySpace::F64));
        // Range pruning.
        assert!(c.block_may_overlap_range(0, 0.0, 4.0));
        assert!(!c.block_may_overlap_range(0, 10.0, 99.0));
        assert!(c.block_may_overlap_range(1, 10.0, 150.0));
    }

    #[test]
    fn all_null_blocks_prune_everything() {
        let mut syms = SymbolTable::new();
        let mut c = Column::new(DataType::Decimal);
        c.push(Value::Null, &mut syms);
        c.push(Value::Null, &mut syms);
        c.push(Value::Decimal(7.0), &mut syms);
        c.freeze_blocks(2);
        assert_eq!(c.block_meta()[0].zone, Zone::AllNull);
        assert!(c.block_meta()[0].has_null);
        assert!(!c.block_may_contain_key(0, (7f64).to_bits(), KeySpace::F64));
        assert!(!c.block_may_overlap_range(0, f64::NEG_INFINITY, f64::INFINITY));
        assert!(c.block_may_contain_key(1, (7f64).to_bits(), KeySpace::F64));
        assert!(!c.block_meta()[1].has_null);
    }

    #[test]
    fn negative_zero_zone_covers_positive_zero_probe() {
        let mut syms = SymbolTable::new();
        let mut c = Column::new(DataType::Decimal);
        // Raw -0.0 normalizes on insert, so the zone stores +0.0 and a
        // probe key built from 0.0 bits must not be pruned.
        c.push(Value::Decimal(-0.0), &mut syms);
        c.freeze_blocks(4);
        assert!(c.block_may_contain_key(0, (0f64).to_bits(), KeySpace::F64));
        assert!(c.block_may_overlap_range(0, 0.0, 0.0));
    }

    #[test]
    fn int_zone_is_exact_at_i64_extremes() {
        let mut syms = SymbolTable::new();
        let mut c = Column::new(DataType::Int);
        c.push(Value::Int(i64::MAX - 1), &mut syms);
        c.freeze_blocks(4);
        // Exact in the Int space: only the stored neighbor passes.
        assert!(c.block_may_contain_key(0, (i64::MAX - 1) as u64, KeySpace::Int));
        assert!(!c.block_may_contain_key(0, i64::MAX as u64, KeySpace::Int));
        assert!(!c.block_may_contain_key(0, i64::MIN as u64, KeySpace::Int));
    }

    #[test]
    fn sym_zone_mask_filters_absent_codes() {
        let mut syms = SymbolTable::new();
        let mut c = Column::new(DataType::Text);
        for s in ["a", "b", "c"] {
            c.push(Value::text(s), &mut syms);
        }
        // Intern two more codes that never enter the column.
        let absent_in_range = syms.intern_text("z1");
        c.push(Value::text("e"), &mut syms); // code 4 > absent_in_range? no:
        c.freeze_blocks(8);
        let Zone::Sym { min, max, .. } = c.block_meta()[0].zone else {
            panic!("sym zone expected");
        };
        assert_eq!(min, 0);
        // "z1" (code 3) is inside [min, max] yet absent: the mask prunes it.
        assert!(max >= absent_in_range);
        assert!(!c.block_may_contain_key(0, absent_in_range as u64, KeySpace::Sym));
        assert!(c.block_may_contain_key(0, 0, KeySpace::Sym));
        // Ranges never prune dictionary columns.
        assert!(c.block_may_overlap_range(0, 1e9, 2e9));
    }

    #[test]
    fn mutation_after_freeze_drops_stale_zone_maps() {
        let mut syms = SymbolTable::new();
        let mut c = Column::new(DataType::Int);
        c.push(Value::Int(1), &mut syms);
        c.freeze_blocks(4);
        assert_eq!(c.block_meta().len(), 1);
        c.push(Value::Int(999), &mut syms);
        assert!(c.block_meta().is_empty());
        assert_eq!(c.block_rows(), None);
        // Unfrozen columns prove nothing.
        assert!(c.block_may_contain_key(0, 12345, KeySpace::Int));
    }

    #[test]
    fn heap_bytes_counts_data_nulls_and_zones() {
        let mut syms = SymbolTable::new();
        let mut c = Column::new(DataType::Int);
        for i in 0..100 {
            c.push(Value::Int(i), &mut syms);
        }
        let before = c.heap_bytes();
        assert_eq!(before, 100 * 8 + 2 * 8); // data + 2 bitmap words
        c.freeze_blocks(16);
        assert_eq!(
            c.heap_bytes() - before,
            7 * std::mem::size_of::<BlockMeta>()
        );
        assert_eq!(c.zone_map_bytes(), 7 * std::mem::size_of::<BlockMeta>());
    }

    #[test]
    fn date_column_is_dictionary_encoded() {
        let mut syms = SymbolTable::new();
        let mut c = Column::new(DataType::Date);
        let d = Date::new(2000, 1, 1);
        c.push(Value::Date(d), &mut syms);
        c.push(Value::Date(d), &mut syms);
        assert_eq!(c.sym(0), c.sym(1));
        assert_eq!(c.value_ref(&syms, 0), ValueRef::Date(d));
        assert_eq!(syms.len(), 1);
    }
}
