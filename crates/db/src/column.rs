//! Typed column vectors with null bitmaps.
//!
//! Storage is one contiguous primitive vector per column — `Vec<i64>` for
//! ints, `Vec<f64>` for decimals, and `Vec<u32>` dictionary codes for
//! text/date/time (see [`crate::interner::SymbolTable`]) — plus a null
//! bitmap. Scans and join probes operate on these raw slices; an owned
//! [`Value`] is materialized only at projection boundaries.
//!
//! ## The compact join-key contract
//!
//! [`Column::join_key_in`] maps every non-null cell to a `u64` in a given
//! [`KeySpace`] such that two cells of join-compatible columns (as enforced
//! by [`crate::Catalog::add_foreign_key`]) are equal under the engine's
//! join semantics **iff** their keys *in a common space* are equal:
//!
//! * [`KeySpace::Int`] keys are the raw `i64` bit pattern — exact over the
//!   whole integer range. The database assigns this space to `Int` columns
//!   whose FK-connected component contains no `Decimal` column (the common
//!   case), fixing the >2⁵³ neighbor collisions of the `f64` view;
//! * [`KeySpace::F64`] keys are the bit pattern of the cell's `f64`
//!   numeric view (`-0.0` is normalized on insert), so an `Int` FK probes
//!   a `Decimal` PK index directly. Exact for |v| < 2⁵³; beyond that,
//!   neighboring integers share an `f64` image and therefore a key;
//! * [`KeySpace::Sym`] keys are the dictionary code, which the
//!   per-database interner keeps equal across tables for equal values.
//!
//! Hash join indexes, probe loops, and residual join checks all operate on
//! these keys; no `Value` is hashed or cloned on the validation hot path.
//! [`crate::Database::key_space`] records each column's assigned space.
//!
//! ## Block zone maps
//!
//! When a database freezes, every column is partitioned into fixed-size row
//! blocks ([`crate::Database::block_rows`], `PRISM_BLOCK_ROWS`) and one
//! [`BlockMeta`] is computed per block: min/max over the non-NULL values for
//! `Int`/`Decimal` columns (NaN tracked separately so bit-equality key
//! probes stay sound), and the code range plus a 64-bit code fingerprint for
//! dictionary columns. The executor consults these through
//! [`Column::block_may_contain_key`] / [`Column::block_may_overlap_range`]
//! to skip whole blocks before touching a row; both tests are conservative
//! (`false` proves the block holds no matching row, `true` proves nothing).
//!
//! Zone maps are built in **one typed pass** per column (the data kind is
//! matched once, not per row). A column that fits a single block allocates
//! no per-block metadata — its one block would be touched by any scan
//! anyway — but every frozen column carries an **inline whole-column
//! summary zone** ([`Column::may_contain_key`] /
//! [`Column::may_overlap_range`]; folded from the block zones when they
//! exist), so a probe that provably misses the entire column skips the
//! scan even on small tables.

use crate::interner::SymbolTable;
use crate::types::{DataType, KeySpace, Value, ValueRef};

/// The typed payload of one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    Int(Vec<i64>),
    Decimal(Vec<f64>),
    /// Dictionary codes into the database's [`SymbolTable`]
    /// (text/date/time columns).
    Sym(Vec<u32>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Decimal(v) => v.len(),
            ColumnData::Sym(v) => v.len(),
        }
    }
}

/// A fixed-size bitmap marking NULL rows. Rows are appended in order.
#[derive(Debug, Clone, Default)]
pub struct NullBitmap {
    words: Vec<u64>,
    len: usize,
    count: u32,
}

impl NullBitmap {
    pub(crate) fn push(&mut self, null: bool) {
        let word = self.len / 64;
        if word >= self.words.len() {
            self.words.push(0);
        }
        if null {
            self.words[word] |= 1u64 << (self.len % 64);
            self.count += 1;
        }
        self.len += 1;
    }

    /// Bulk-append another bitmap's bits at the current length. Word-wise:
    /// each source word lands as one (shift == 0) or two shifted ORs, so a
    /// batch of N rows costs N/64 word operations instead of N bit pushes.
    pub(crate) fn extend_from(&mut self, other: &NullBitmap) {
        let offset = self.len;
        self.len += other.len;
        self.words.resize(self.len.div_ceil(64), 0);
        self.count += other.count;
        if other.count == 0 {
            return;
        }
        let (base, shift) = (offset / 64, offset % 64);
        for (i, &w) in other.words.iter().enumerate() {
            if w == 0 {
                continue;
            }
            self.words[base + i] |= w << shift;
            if shift != 0 {
                // Bits past `other.len` are never set, so a non-zero
                // carry word is always in range.
                let carry = w >> (64 - shift);
                if carry != 0 {
                    self.words[base + i + 1] |= carry;
                }
            }
        }
    }

    #[inline]
    pub fn is_null(&self, row: usize) -> bool {
        debug_assert!(row < self.len);
        // Fast path: most columns have no NULLs at all, and `count` shares
        // a cache line with the words pointer.
        self.count != 0 && self.words[row / 64] >> (row % 64) & 1 == 1
    }

    /// Number of NULL rows.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// True when no row is NULL — lets scans skip the bitmap test.
    pub fn none_null(&self) -> bool {
        self.count == 0
    }
}

/// Zone summary of one row block (see the module docs). Only non-NULL rows
/// contribute; an all-NULL block is [`Zone::AllNull`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Zone {
    /// Every row of the block is NULL — no key or range can match.
    AllNull,
    /// Min/max of the non-NULL `i64` values in the block.
    Int { min: i64, max: i64 },
    /// Min/max of the non-NULL, non-NaN `f64` values in the block
    /// (`-0.0` is normalized on insert, so zero is unambiguous). `has_nan`
    /// keeps bit-equality key probes sound: a NaN key can only match inside
    /// a block that stored a NaN.
    Dec { min: f64, max: f64, has_nan: bool },
    /// Code range of the non-NULL dictionary codes in the block, plus a
    /// 64-bit fingerprint with bit `code % 64` set per distinct code — a
    /// one-word "is this code possibly here?" filter on top of the range.
    Sym { min: u32, max: u32, mask: u64 },
}

/// Per-block metadata: the value zone plus a has-NULL bit (lets consumers
/// skip the null-bitmap test inside all-non-NULL blocks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockMeta {
    pub has_null: bool,
    pub zone: Zone,
}

impl BlockMeta {
    /// Can any row summarized by this meta carry compact join key `key` in
    /// `space`? Conservative: `false` proves absence, `true` proves
    /// nothing.
    #[inline]
    pub fn may_contain_key(&self, key: u64, space: KeySpace) -> bool {
        match (self.zone, space) {
            (Zone::AllNull, _) => false, // NULL rows never carry a key
            (Zone::Int { min, max }, KeySpace::Int) => {
                let k = key as i64;
                min <= k && k <= max
            }
            (Zone::Int { min, max }, KeySpace::F64) => {
                // The key is `(v as f64).to_bits()` of some i64 v. i64→f64
                // conversion is monotone, so the f64 images of the zone's
                // values all lie in [min as f64, max as f64] — exact, no
                // rounding margin needed.
                let f = f64::from_bits(key);
                (min as f64) <= f && f <= (max as f64)
            }
            (Zone::Dec { min, max, has_nan }, KeySpace::F64) => {
                let f = f64::from_bits(key);
                if f.is_nan() {
                    // Keys compare by bit pattern, so a NaN key can match a
                    // stored NaN; only a NaN-free zone is provably clear.
                    has_nan
                } else {
                    min <= f && f <= max
                }
            }
            (Zone::Sym { min, max, mask }, KeySpace::Sym) => {
                let code = key as u32;
                min <= code && code <= max && mask >> (code % 64) & 1 == 1
            }
            (z, s) => unreachable!("zone {z:?} probed in space {s:?}"),
        }
    }

    /// Can any non-NULL numeric row summarized by this meta lie in the
    /// closed interval `[lo, hi]`? Conservative like
    /// [`BlockMeta::may_contain_key`]; always `true` for dictionary zones
    /// (ranges don't apply to codes). NaN rows can never satisfy a range,
    /// so they are ignored here.
    #[inline]
    pub fn may_overlap_range(&self, lo: f64, hi: f64) -> bool {
        match self.zone {
            Zone::AllNull => false,
            // i64→f64 conversion is monotone and `lo`/`hi` are exactly
            // representable, so `(max as f64) < lo` implies `max < lo` (and
            // symmetrically) — the integer test needs no rounding margin.
            Zone::Int { min, max } => !((max as f64) < lo || (min as f64) > hi),
            Zone::Dec { min, max, .. } => !(max < lo || min > hi),
            Zone::Sym { .. } => true,
        }
    }

    /// Widen this meta to also cover everything `other` covers.
    fn fold(&mut self, other: &BlockMeta) {
        self.has_null |= other.has_null;
        self.zone = match (self.zone, other.zone) {
            (z, Zone::AllNull) => z,
            (Zone::AllNull, z) => z,
            (Zone::Int { min: a, max: b }, Zone::Int { min: c, max: d }) => Zone::Int {
                min: a.min(c),
                max: b.max(d),
            },
            (
                Zone::Dec {
                    min: a,
                    max: b,
                    has_nan: x,
                },
                Zone::Dec {
                    min: c,
                    max: d,
                    has_nan: y,
                },
            ) => Zone::Dec {
                min: a.min(c),
                max: b.max(d),
                has_nan: x || y,
            },
            (
                Zone::Sym {
                    min: a,
                    max: b,
                    mask: x,
                },
                Zone::Sym {
                    min: c,
                    max: d,
                    mask: y,
                },
            ) => Zone::Sym {
                min: a.min(c),
                max: b.max(d),
                mask: x | y,
            },
            (a, b) => unreachable!("folding mismatched zones {a:?} / {b:?}"),
        };
    }
}

/// One typed column: declared type, primitive data vector, null bitmap.
/// NULL rows hold a placeholder in the data vector (0 / 0.0 / `u32::MAX`)
/// and are flagged in the bitmap.
#[derive(Debug, Clone)]
pub struct Column {
    dtype: DataType,
    data: ColumnData,
    nulls: NullBitmap,
    /// Largest symbol code stored in a `Sym` column (0 when empty). Bounds
    /// this column's code range without a scan — e.g. for sizing per-scan
    /// predicate memo bitmaps to the column, not the whole database.
    max_sym: u32,
    /// Zone maps, one per `block_rows`-sized block. Empty until
    /// [`Column::freeze_blocks`] runs (the database freeze does so), and
    /// empty for columns that fit one block (see `freeze_blocks`).
    blocks: Vec<BlockMeta>,
    /// Whole-column summary zone, present once frozen — an inline field,
    /// not an allocation. For multi-block columns it is the fold of the
    /// per-block zones (no second data pass); for single-block columns it
    /// is the *only* zone computed, so range/key probes can still prove a
    /// whole small table empty without per-block metadata.
    summary: Option<BlockMeta>,
    /// Rows per block; 0 until frozen or when the column fits one block.
    block_rows: u32,
    /// Block size for *incremental* zone accumulation during bulk ingest
    /// (0 = disabled). Set by the owning builder so zone maps can be folded
    /// block-by-block as batches land, making the freeze an O(tail)
    /// finalize instead of a full re-scan.
    zone_hint: u32,
    /// Rows already covered by accumulated entries of `blocks`. Invariant
    /// while accumulating: `zoned_upto % zone_hint == 0` and
    /// `blocks.len() == zoned_upto / zone_hint`.
    zoned_upto: usize,
}

/// Placeholder code stored in `Sym` columns at NULL rows.
pub(crate) const NULL_SYM: u32 = u32::MAX;

impl Column {
    /// An empty column of declared type `dtype`.
    pub fn new(dtype: DataType) -> Column {
        let data = match dtype {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Decimal => ColumnData::Decimal(Vec::new()),
            DataType::Text | DataType::Date | DataType::Time => ColumnData::Sym(Vec::new()),
        };
        Column {
            dtype,
            data,
            nulls: NullBitmap::default(),
            max_sym: 0,
            blocks: Vec::new(),
            summary: None,
            block_rows: 0,
            zone_hint: 0,
            zoned_upto: 0,
        }
    }

    /// Enable incremental zone accumulation at `block_rows` rows per block.
    /// The builder calls this with its resolved block size so bulk appends
    /// fold zone maps as they go and the freeze only scans the tail.
    pub(crate) fn set_zone_hint(&mut self, block_rows: usize) {
        self.zone_hint = block_rows as u32;
    }

    /// Upper bound (inclusive) of the symbol codes stored in this column;
    /// 0 for numeric or empty columns.
    pub fn max_sym_code(&self) -> u32 {
        self.max_sym
    }

    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw typed payload, for vectorized consumers (stats, discretizers).
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    pub fn nulls(&self) -> &NullBitmap {
        &self.nulls
    }

    #[inline]
    pub fn is_null(&self, row: usize) -> bool {
        self.nulls.is_null(row)
    }

    pub fn null_count(&self) -> u32 {
        self.nulls.count()
    }

    /// Append one cell. The value must already be validated against (and
    /// widened to) this column's type — [`crate::Table::push_row`] does so.
    pub(crate) fn push(&mut self, v: Value, syms: &mut SymbolTable) {
        if !self.blocks.is_empty() || self.summary.is_some() {
            // Freeze is the last thing to happen to a column, but a mutation
            // must never leave stale zone maps behind. Per-cell pushes also
            // abandon incremental accumulation (the freeze re-scans).
            self.blocks.clear();
            self.summary = None;
            self.block_rows = 0;
            self.zoned_upto = 0;
        }
        match (&mut self.data, v) {
            (ColumnData::Int(vec), Value::Null) => {
                vec.push(0);
                self.nulls.push(true);
            }
            (ColumnData::Int(vec), Value::Int(i)) => {
                vec.push(i);
                self.nulls.push(false);
            }
            (ColumnData::Decimal(vec), Value::Null) => {
                vec.push(0.0);
                self.nulls.push(true);
            }
            (ColumnData::Decimal(vec), Value::Decimal(d)) => {
                // Normalize -0.0 so equal values share bit patterns (join
                // keys and stats both key on bits). `Value::decimal` does
                // this too, but raw `Value::Decimal(-0.0)` can reach us.
                vec.push(if d == 0.0 { 0.0 } else { d });
                self.nulls.push(false);
            }
            (ColumnData::Sym(vec), Value::Null) => {
                vec.push(NULL_SYM);
                self.nulls.push(true);
            }
            (ColumnData::Sym(vec), Value::Text(s)) => {
                let code = syms.intern_text_owned(s);
                self.max_sym = self.max_sym.max(code);
                vec.push(code);
                self.nulls.push(false);
            }
            (ColumnData::Sym(vec), Value::Date(d)) => {
                let code = syms.intern_date(d);
                self.max_sym = self.max_sym.max(code);
                vec.push(code);
                self.nulls.push(false);
            }
            (ColumnData::Sym(vec), Value::Time(t)) => {
                let code = syms.intern_time(t);
                self.max_sym = self.max_sym.max(code);
                vec.push(code);
                self.nulls.push(false);
            }
            (_, v) => unreachable!("push of {} into {} column", v.type_name(), self.dtype),
        }
    }

    /// Bulk-append pre-typed rows: a data vector shaped like this column
    /// (already validated/widened and, for `Sym`, already carrying *global*
    /// interner codes with `NULL_SYM` at null rows) plus the matching null
    /// bitmap. Zone maps are folded incrementally for every complete
    /// `zone_hint`-sized block the append closes, so the eventual freeze
    /// only has to scan the tail.
    pub(crate) fn append_parts(&mut self, part: &ColumnData, part_nulls: &NullBitmap) {
        self.unfreeze_for_append();
        match (&mut self.data, part) {
            (ColumnData::Int(vec), ColumnData::Int(p)) => vec.extend_from_slice(p),
            (ColumnData::Decimal(vec), ColumnData::Decimal(p)) => {
                // Normalize -0.0 like the per-cell path, so bit-keyed joins
                // and zone probes see one zero.
                vec.extend(p.iter().map(|&d| if d == 0.0 { 0.0 } else { d }));
            }
            (ColumnData::Decimal(vec), ColumnData::Int(p)) => {
                // Int batches widen into decimal columns, mirroring
                // `push_row`'s per-cell widening.
                vec.extend(p.iter().map(|&i| i as f64));
            }
            (ColumnData::Sym(vec), ColumnData::Sym(p)) => {
                vec.extend_from_slice(p);
                for &code in p {
                    if code != NULL_SYM {
                        self.max_sym = self.max_sym.max(code);
                    }
                }
            }
            _ => unreachable!("batch column shape mismatch is validated upstream"),
        }
        self.nulls.extend_from(part_nulls);
        self.fold_zones_to_len();
    }

    /// Drop freeze artifacts (summary, tail block, `block_rows`) while
    /// keeping the incrementally accumulated complete blocks, so appends
    /// after a freeze stay O(new rows).
    fn unfreeze_for_append(&mut self) {
        if self.summary.is_some() {
            self.summary = None;
            self.block_rows = 0;
            if self.zone_hint > 0 {
                self.blocks
                    .truncate(self.zoned_upto / self.zone_hint as usize);
            } else {
                self.blocks.clear();
            }
        }
    }

    /// Fold a zone-map entry for every complete `zone_hint`-sized block not
    /// yet covered. No-op when accumulation is disabled.
    fn fold_zones_to_len(&mut self) {
        let hint = self.zone_hint as usize;
        if hint == 0 {
            return;
        }
        let n = self.len();
        while self.zoned_upto + hint <= n {
            let meta = self.chunk_meta(self.zoned_upto, self.zoned_upto + hint);
            self.blocks.push(meta);
            self.zoned_upto += hint;
        }
    }

    /// Borrowed view of one cell. Zero-copy: text resolves through the
    /// interner without cloning.
    #[inline]
    pub fn value_ref<'a>(&'a self, syms: &'a SymbolTable, row: usize) -> ValueRef<'a> {
        if self.nulls.is_null(row) {
            return ValueRef::Null;
        }
        match &self.data {
            ColumnData::Int(v) => ValueRef::Int(v[row]),
            ColumnData::Decimal(v) => ValueRef::Decimal(v[row]),
            // Columns are homogeneous: the declared type names the symbol
            // kind, so resolution is one dense-vector load, no enum branch.
            ColumnData::Sym(v) => match self.dtype {
                DataType::Text => ValueRef::Text(syms.text(v[row])),
                DataType::Date => ValueRef::Date(syms.date(v[row])),
                DataType::Time => ValueRef::Time(syms.time(v[row])),
                _ => unreachable!("numeric columns are not dictionary-encoded"),
            },
        }
    }

    /// Iterate all cells as borrowed views, in row order.
    pub fn iter<'a>(
        &'a self,
        syms: &'a SymbolTable,
    ) -> impl ExactSizeIterator<Item = ValueRef<'a>> + 'a {
        (0..self.len()).map(move |r| self.value_ref(syms, r))
    }

    /// Compact join key of one cell in the column's *native* key space
    /// (`None` for NULL). Prefer [`crate::Database::join_key`], which keys
    /// in the column's FK-component-assigned space — the two differ only
    /// for `Int` columns demoted to [`KeySpace::F64`] by a `Decimal`
    /// join partner.
    #[inline]
    pub fn join_key(&self, row: usize) -> Option<u64> {
        self.join_key_in(row, self.dtype.native_key_space())
    }

    /// Compact join key of one cell in `space` (`None` for NULL). See the
    /// module docs for the key contract. `space` must be one the column's
    /// data can key in: [`KeySpace::Int`] is only valid for `Int` columns
    /// (a `Decimal` column is never `Int`-spaced).
    #[inline]
    pub fn join_key_in(&self, row: usize, space: KeySpace) -> Option<u64> {
        if self.nulls.is_null(row) {
            return None;
        }
        Some(match (&self.data, space) {
            (ColumnData::Int(v), KeySpace::Int) => v[row] as u64,
            (ColumnData::Int(v), KeySpace::F64) => (v[row] as f64).to_bits(),
            (ColumnData::Decimal(v), KeySpace::F64) => v[row].to_bits(),
            (ColumnData::Sym(v), KeySpace::Sym) => v[row] as u64,
            _ => unreachable!("column data cannot key in {space:?}"),
        })
    }

    /// The symbol code of one cell of a dictionary column (`None` for NULL).
    /// Panics on numeric columns.
    pub fn sym(&self, row: usize) -> Option<u32> {
        match &self.data {
            ColumnData::Sym(v) => (!self.nulls.is_null(row)).then(|| v[row]),
            _ => panic!("sym() on a numeric column"),
        }
    }

    /// (Re)compute the per-block zone maps at `block_rows` rows per block.
    /// Called once when the owning database freezes; idempotent.
    ///
    /// The computation is one typed pass per column: the data kind is
    /// matched **once** and each block's summary comes from a tight loop
    /// over its chunk slice (with a branch-free body when the column has no
    /// NULLs — the common case). Columns that fit a **single block**
    /// allocate no per-block metadata (it could never skip anything a scan
    /// wouldn't touch) but still get the inline whole-column summary.
    pub(crate) fn freeze_blocks(&mut self, block_rows: usize) {
        debug_assert!(block_rows > 0);
        // Re-freezing first strips the previous freeze's artifacts but keeps
        // incrementally accumulated blocks, so repeat freezes stay O(tail).
        self.unfreeze_for_append();
        let n = self.len();
        if n <= block_rows {
            // Single block: per-block zone maps could never skip anything a
            // scan wouldn't touch anyway, so no metadata Vec is allocated —
            // but the inline whole-column summary is still computed (one
            // tight pass), so range and key probes can prove the entire
            // column empty.
            self.blocks.clear();
            self.zoned_upto = 0;
            self.block_rows = 0;
            self.summary = (n > 0).then(|| self.chunk_meta(0, n));
            return;
        }
        let complete = (n / block_rows) * block_rows;
        if self.zone_hint as usize == block_rows
            && self.zoned_upto == complete
            && self.blocks.len() == complete / block_rows
            && complete > 0
        {
            // Fast path: ingest already folded a zone for every complete
            // block at exactly this granularity — only the (< block_rows)
            // tail is left to scan. `zoned_upto` stays at `complete`; the
            // tail block is a freeze artifact that `unfreeze_for_append`
            // strips again if more rows arrive.
            if n > complete {
                let meta = self.chunk_meta(complete, n);
                self.blocks.push(meta);
            }
        } else {
            // Slow path: no usable accumulation (per-cell inserts, or a
            // different block size was requested) — full re-scan.
            self.blocks.clear();
            self.blocks.reserve_exact(n.div_ceil(block_rows));
            for start in (0..n).step_by(block_rows) {
                let meta = self.chunk_meta(start, (start + block_rows).min(n));
                self.blocks.push(meta);
            }
            self.zoned_upto = if self.zone_hint as usize == block_rows {
                complete
            } else {
                0
            };
        }
        self.block_rows = block_rows as u32;
        // The whole-column summary is the fold of the block zones — no
        // second pass over the data.
        let mut summary = self.blocks[0];
        for b in &self.blocks[1..] {
            summary.fold(b);
        }
        self.summary = Some(summary);
    }

    /// Zone summary of rows `start..end`, computed in one tight typed loop
    /// (the data kind is matched once per chunk, and the NULL test is
    /// skipped entirely for NULL-free columns).
    fn chunk_meta(&self, start: usize, end: usize) -> BlockMeta {
        debug_assert!(start < end && end <= self.len());
        let no_nulls = self.nulls.none_null();
        let nulls = &self.nulls;
        match &self.data {
            ColumnData::Int(v) => {
                let (mut min, mut max) = (i64::MAX, i64::MIN);
                let mut has_null = false;
                let mut any = false;
                if no_nulls {
                    any = true;
                    for &x in &v[start..end] {
                        min = min.min(x);
                        max = max.max(x);
                    }
                } else {
                    for (i, &x) in v[start..end].iter().enumerate() {
                        if nulls.is_null(start + i) {
                            has_null = true;
                            continue;
                        }
                        any = true;
                        min = min.min(x);
                        max = max.max(x);
                    }
                }
                let zone = if any {
                    Zone::Int { min, max }
                } else {
                    Zone::AllNull
                };
                BlockMeta { has_null, zone }
            }
            ColumnData::Decimal(v) => {
                // Empty range auto-fails every overlap test until a finite
                // value lands in the chunk.
                let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
                let mut has_nan = false;
                let mut has_null = false;
                let mut any = false;
                for (i, &x) in v[start..end].iter().enumerate() {
                    if !no_nulls && nulls.is_null(start + i) {
                        has_null = true;
                        continue;
                    }
                    any = true;
                    if x.is_nan() {
                        has_nan = true;
                    } else {
                        min = min.min(x);
                        max = max.max(x);
                    }
                }
                let zone = if any {
                    Zone::Dec { min, max, has_nan }
                } else {
                    Zone::AllNull
                };
                BlockMeta { has_null, zone }
            }
            ColumnData::Sym(v) => {
                let (mut min, mut max) = (u32::MAX, 0u32);
                let mut mask = 0u64;
                let mut has_null = false;
                let mut any = false;
                for (i, &code) in v[start..end].iter().enumerate() {
                    if !no_nulls && nulls.is_null(start + i) {
                        has_null = true;
                        continue;
                    }
                    any = true;
                    min = min.min(code);
                    max = max.max(code);
                    mask |= 1u64 << (code % 64);
                }
                let zone = if any {
                    Zone::Sym { min, max, mask }
                } else {
                    Zone::AllNull
                };
                BlockMeta { has_null, zone }
            }
        }
    }

    /// Rows per zone-map block (`None` before the database freeze).
    #[inline]
    pub fn block_rows(&self) -> Option<usize> {
        (self.block_rows > 0).then_some(self.block_rows as usize)
    }

    /// Per-block zone maps (empty before the database freeze).
    pub fn block_meta(&self) -> &[BlockMeta] {
        &self.blocks
    }

    /// Can any row of block `b` carry compact join key `key` in `space`?
    /// Conservative: `false` proves absence, `true` proves nothing. Blocks
    /// are `block_rows()` rows; `b` must be in range once frozen.
    #[inline]
    pub fn block_may_contain_key(&self, b: usize, key: u64, space: KeySpace) -> bool {
        match self.blocks.get(b) {
            Some(meta) => meta.may_contain_key(key, space),
            None => true, // not frozen / single block: nothing provable here
        }
    }

    /// Can any non-NULL numeric row of block `b` lie in the closed interval
    /// `[lo, hi]`? Conservative like [`Column::block_may_contain_key`];
    /// always `true` for dictionary columns (ranges don't apply to codes).
    /// NaN rows can never satisfy a range, so they are ignored here.
    #[inline]
    pub fn block_may_overlap_range(&self, b: usize, lo: f64, hi: f64) -> bool {
        match self.blocks.get(b) {
            Some(meta) => meta.may_overlap_range(lo, hi),
            None => true,
        }
    }

    /// Can *any* row of the whole column carry `key` in `space`? Answered
    /// from the inline summary zone, so it works even for single-block
    /// columns that carry no per-block metadata. `true` before freeze.
    #[inline]
    pub fn may_contain_key(&self, key: u64, space: KeySpace) -> bool {
        match &self.summary {
            Some(meta) => meta.may_contain_key(key, space),
            None => !self.is_empty(), // unfrozen: nothing provable
        }
    }

    /// Can any non-NULL numeric row of the whole column lie in `[lo, hi]`?
    /// Summary-level companion of [`Column::block_may_overlap_range`].
    #[inline]
    pub fn may_overlap_range(&self, lo: f64, hi: f64) -> bool {
        match &self.summary {
            Some(meta) => meta.may_overlap_range(lo, hi),
            None => !self.is_empty(),
        }
    }

    /// The whole-column summary zone (`None` before the database freeze).
    pub fn summary_meta(&self) -> Option<&BlockMeta> {
        self.summary.as_ref()
    }

    /// Heap bytes held by this column's data vector, null bitmap, and zone
    /// maps (content, not capacity — the auditable payload).
    pub fn heap_bytes(&self) -> usize {
        let data = match &self.data {
            ColumnData::Int(v) => v.len() * std::mem::size_of::<i64>(),
            ColumnData::Decimal(v) => v.len() * std::mem::size_of::<f64>(),
            ColumnData::Sym(v) => v.len() * std::mem::size_of::<u32>(),
        };
        data + self.nulls.words.len() * 8 + self.blocks.len() * std::mem::size_of::<BlockMeta>()
    }

    /// Zone-map bytes alone (part of [`Column::heap_bytes`]).
    pub fn zone_map_bytes(&self) -> usize {
        self.blocks.len() * std::mem::size_of::<BlockMeta>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Date;

    #[test]
    fn null_bitmap_tracks_positions_and_count() {
        let mut b = NullBitmap::default();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.count(), 44);
        assert!(b.is_null(0));
        assert!(!b.is_null(1));
        assert!(b.is_null(129));
        assert!(!b.none_null());
    }

    #[test]
    fn int_column_join_keys_match_decimal_column_in_f64_space() {
        let mut syms = SymbolTable::new();
        let mut ci = Column::new(DataType::Int);
        let mut cd = Column::new(DataType::Decimal);
        ci.push(Value::Int(497), &mut syms);
        cd.push(Value::Decimal(497.0), &mut syms);
        // F64 is the common space of an Int↔Decimal comparison.
        assert_eq!(
            ci.join_key_in(0, KeySpace::F64),
            cd.join_key_in(0, KeySpace::F64)
        );
        ci.push(Value::Null, &mut syms);
        assert_eq!(ci.join_key(1), None);
        assert_eq!(ci.join_key_in(1, KeySpace::F64), None);
    }

    #[test]
    fn int_space_keys_are_exact_beyond_f64_precision() {
        let mut syms = SymbolTable::new();
        let mut c = Column::new(DataType::Int);
        c.push(Value::Int(i64::MAX), &mut syms);
        c.push(Value::Int(i64::MAX - 1), &mut syms);
        // The f64 view conflates the neighbors; the Int space keeps them
        // apart (this is the whole point of the Int key space).
        assert_eq!(
            c.join_key_in(0, KeySpace::F64),
            c.join_key_in(1, KeySpace::F64)
        );
        assert_ne!(
            c.join_key_in(0, KeySpace::Int),
            c.join_key_in(1, KeySpace::Int)
        );
        // Native space of an Int column is Int.
        assert_eq!(c.join_key(0), c.join_key_in(0, KeySpace::Int));
    }

    #[test]
    fn sym_column_resolves_through_interner() {
        let mut syms = SymbolTable::new();
        let mut a = Column::new(DataType::Text);
        let mut b = Column::new(DataType::Text);
        a.push(Value::text("Lake Tahoe"), &mut syms);
        b.push(Value::text("Lake Tahoe"), &mut syms);
        b.push(Value::Null, &mut syms);
        // Same value, same key — across distinct columns.
        assert_eq!(a.join_key(0), b.join_key(0));
        assert_eq!(a.value_ref(&syms, 0), ValueRef::Text("Lake Tahoe"));
        assert_eq!(b.value_ref(&syms, 1), ValueRef::Null);
        assert_eq!(b.sym(1), None);
    }

    #[test]
    fn negative_zero_normalizes_on_insert() {
        let mut syms = SymbolTable::new();
        let mut a = Column::new(DataType::Decimal);
        let mut b = Column::new(DataType::Decimal);
        // Raw Value::Decimal(-0.0) bypasses Value::decimal's normalization;
        // the column must normalize anyway so bit-keyed joins and stats see
        // one zero.
        a.push(Value::Decimal(-0.0), &mut syms);
        b.push(Value::Decimal(0.0), &mut syms);
        assert_eq!(a.join_key(0), b.join_key(0));
        assert_eq!(a.value_ref(&syms, 0), ValueRef::Decimal(0.0));
    }

    #[test]
    fn int_zone_maps_bound_blocks_and_prune_keys_and_ranges() {
        let mut syms = SymbolTable::new();
        let mut c = Column::new(DataType::Int);
        for v in [5i64, -3, 9, 100, 200, 150] {
            c.push(Value::Int(v), &mut syms);
        }
        c.freeze_blocks(3);
        assert_eq!(c.block_rows(), Some(3));
        assert_eq!(c.block_meta().len(), 2);
        assert_eq!(c.block_meta()[0].zone, Zone::Int { min: -3, max: 9 },);
        // Key pruning in the Int space.
        assert!(c.block_may_contain_key(0, 5i64 as u64, KeySpace::Int));
        assert!(!c.block_may_contain_key(0, 100i64 as u64, KeySpace::Int));
        assert!(c.block_may_contain_key(1, 100i64 as u64, KeySpace::Int));
        // ...and through the f64 view.
        assert!(c.block_may_contain_key(0, (5f64).to_bits(), KeySpace::F64));
        assert!(!c.block_may_contain_key(0, (100f64).to_bits(), KeySpace::F64));
        // Range pruning.
        assert!(c.block_may_overlap_range(0, 0.0, 4.0));
        assert!(!c.block_may_overlap_range(0, 10.0, 99.0));
        assert!(c.block_may_overlap_range(1, 10.0, 150.0));
    }

    #[test]
    fn all_null_blocks_prune_everything() {
        let mut syms = SymbolTable::new();
        let mut c = Column::new(DataType::Decimal);
        c.push(Value::Null, &mut syms);
        c.push(Value::Null, &mut syms);
        c.push(Value::Decimal(7.0), &mut syms);
        c.freeze_blocks(2);
        assert_eq!(c.block_meta()[0].zone, Zone::AllNull);
        assert!(c.block_meta()[0].has_null);
        assert!(!c.block_may_contain_key(0, (7f64).to_bits(), KeySpace::F64));
        assert!(!c.block_may_overlap_range(0, f64::NEG_INFINITY, f64::INFINITY));
        assert!(c.block_may_contain_key(1, (7f64).to_bits(), KeySpace::F64));
        assert!(!c.block_meta()[1].has_null);
    }

    #[test]
    fn negative_zero_zone_covers_positive_zero_probe() {
        let mut syms = SymbolTable::new();
        let mut c = Column::new(DataType::Decimal);
        // Raw -0.0 normalizes on insert, so the zone stores +0.0 and a
        // probe key built from 0.0 bits must not be pruned. (Two rows at
        // one row per block: single-block columns skip zone maps.)
        c.push(Value::Decimal(-0.0), &mut syms);
        c.push(Value::Decimal(7.0), &mut syms);
        c.freeze_blocks(1);
        assert!(c.block_may_contain_key(0, (0f64).to_bits(), KeySpace::F64));
        assert!(c.block_may_overlap_range(0, 0.0, 0.0));
        assert!(!c.block_may_overlap_range(0, 1.0, 2.0));
    }

    #[test]
    fn int_zone_is_exact_at_i64_extremes() {
        let mut syms = SymbolTable::new();
        let mut c = Column::new(DataType::Int);
        c.push(Value::Int(i64::MAX - 1), &mut syms);
        c.push(Value::Int(0), &mut syms);
        c.freeze_blocks(1);
        // Exact in the Int space: only the stored neighbor passes block 0.
        assert!(c.block_may_contain_key(0, (i64::MAX - 1) as u64, KeySpace::Int));
        assert!(!c.block_may_contain_key(0, i64::MAX as u64, KeySpace::Int));
        assert!(!c.block_may_contain_key(0, i64::MIN as u64, KeySpace::Int));
    }

    #[test]
    fn single_block_columns_skip_zone_maps_but_keep_a_summary() {
        let mut syms = SymbolTable::new();
        let mut c = Column::new(DataType::Int);
        for i in 0..10 {
            c.push(Value::Int(i), &mut syms);
        }
        c.freeze_blocks(16);
        // The whole column fits one block: no per-block metadata is
        // allocated and block-level probes prove nothing...
        assert_eq!(c.block_rows(), None);
        assert!(c.block_meta().is_empty());
        assert_eq!(c.zone_map_bytes(), 0);
        assert!(c.block_may_contain_key(0, 999, KeySpace::Int));
        assert!(c.block_may_overlap_range(0, 1e9, 2e9));
        // ...but the inline whole-column summary still prunes.
        assert!(c.may_contain_key(7i64 as u64, KeySpace::Int));
        assert!(!c.may_contain_key(999, KeySpace::Int));
        assert!(c.may_overlap_range(5.0, 6.0));
        assert!(!c.may_overlap_range(1e9, 2e9));
        // One more row pushes it past the block size: zones appear, and the
        // summary becomes their fold.
        for i in 90..97 {
            c.push(Value::Int(i), &mut syms);
        }
        c.freeze_blocks(16);
        assert_eq!(c.block_rows(), Some(16));
        assert_eq!(c.block_meta().len(), 2);
        assert_eq!(
            c.summary_meta().unwrap().zone,
            Zone::Int { min: 0, max: 96 }
        );
        assert!(!c.may_overlap_range(100.0, 200.0));
    }

    #[test]
    fn mutation_after_freeze_drops_the_summary_too() {
        let mut syms = SymbolTable::new();
        let mut c = Column::new(DataType::Int);
        c.push(Value::Int(1), &mut syms);
        c.freeze_blocks(4);
        assert!(!c.may_contain_key(50i64 as u64, KeySpace::Int));
        c.push(Value::Int(50), &mut syms);
        assert!(c.summary_meta().is_none(), "stale summary dropped");
        assert!(c.may_contain_key(50i64 as u64, KeySpace::Int));
    }

    #[test]
    fn sym_zone_mask_filters_absent_codes() {
        let mut syms = SymbolTable::new();
        let mut c = Column::new(DataType::Text);
        for s in ["a", "b", "c"] {
            c.push(Value::text(s), &mut syms);
        }
        // Intern a code that never enters the column.
        let absent_in_range = syms.intern_text("z1");
        c.push(Value::text("e"), &mut syms); // code 4
        c.freeze_blocks(2);
        assert_eq!(c.block_meta().len(), 2);
        let Zone::Sym { min, max, .. } = c.block_meta()[1].zone else {
            panic!("sym zone expected");
        };
        // Block 1 holds {"c" (2), "e" (4)}: "z1" (code 3) is inside
        // [min, max] yet absent — the mask prunes it.
        assert_eq!((min, max), (2, 4));
        assert!(min < absent_in_range && absent_in_range < max);
        assert!(!c.block_may_contain_key(1, absent_in_range as u64, KeySpace::Sym));
        assert!(c.block_may_contain_key(1, 2, KeySpace::Sym));
        assert!(c.block_may_contain_key(0, 0, KeySpace::Sym));
        // ...and the plain code range prunes block 0.
        assert!(!c.block_may_contain_key(0, absent_in_range as u64, KeySpace::Sym));
        // Ranges never prune dictionary columns.
        assert!(c.block_may_overlap_range(0, 1e9, 2e9));
    }

    #[test]
    fn mutation_after_freeze_drops_stale_zone_maps() {
        let mut syms = SymbolTable::new();
        let mut c = Column::new(DataType::Int);
        c.push(Value::Int(1), &mut syms);
        c.push(Value::Int(2), &mut syms);
        c.freeze_blocks(1);
        assert_eq!(c.block_meta().len(), 2);
        c.push(Value::Int(999), &mut syms);
        assert!(c.block_meta().is_empty());
        assert_eq!(c.block_rows(), None);
        // Unfrozen columns prove nothing.
        assert!(c.block_may_contain_key(0, 12345, KeySpace::Int));
    }

    #[test]
    fn heap_bytes_counts_data_nulls_and_zones() {
        let mut syms = SymbolTable::new();
        let mut c = Column::new(DataType::Int);
        for i in 0..100 {
            c.push(Value::Int(i), &mut syms);
        }
        let before = c.heap_bytes();
        assert_eq!(before, 100 * 8 + 2 * 8); // data + 2 bitmap words
        c.freeze_blocks(16);
        assert_eq!(
            c.heap_bytes() - before,
            7 * std::mem::size_of::<BlockMeta>()
        );
        assert_eq!(c.zone_map_bytes(), 7 * std::mem::size_of::<BlockMeta>());
    }

    #[test]
    fn date_column_is_dictionary_encoded() {
        let mut syms = SymbolTable::new();
        let mut c = Column::new(DataType::Date);
        let d = Date::new(2000, 1, 1);
        c.push(Value::Date(d), &mut syms);
        c.push(Value::Date(d), &mut syms);
        assert_eq!(c.sym(0), c.sym(1));
        assert_eq!(c.value_ref(&syms, 0), ValueRef::Date(d));
        assert_eq!(syms.len(), 1);
    }
}
