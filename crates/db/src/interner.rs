//! Per-database value interner.
//!
//! Text, date, and time cells are dictionary-encoded: each distinct value is
//! stored once in the database-wide [`SymbolTable`] and columns hold compact
//! `u32` symbol ids. Ids are dense per kind (text/date/time each count from
//! zero), and the table is shared by every column of a database, so **equal
//! values always receive equal ids across tables** — which is what lets hash
//! joins and residual join checks compare raw `u32` ids instead of hashing
//! or cloning `Value`s. (Join-compatible columns always share a kind: the
//! catalog rejects foreign keys between different non-numeric types.)

use crate::types::{DataType, Date, Time, Value};
use std::collections::HashMap;

/// The dictionary of one database: dense id → value per kind, plus reverse
/// maps so interning a `&str` never allocates on a hit.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    texts: Vec<String>,
    dates: Vec<Date>,
    times: Vec<Time>,
    text_ids: HashMap<String, u32>,
    date_ids: HashMap<Date, u32>,
    time_ids: HashMap<Time, u32>,
}

impl SymbolTable {
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Number of distinct interned values across all kinds.
    pub fn len(&self) -> usize {
        self.texts.len() + self.dates.len() + self.times.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Intern a text value, returning its stable id.
    pub fn intern_text(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.text_ids.get(s) {
            return id;
        }
        let id = checked_id(self.texts.len());
        self.texts.push(s.to_string());
        self.text_ids.insert(s.to_string(), id);
        id
    }

    /// Intern a text value from an owned string — one allocation fewer than
    /// [`SymbolTable::intern_text`] on first sight (the string is stored
    /// once and cloned once for the reverse map, instead of copied twice).
    pub fn intern_text_owned(&mut self, s: String) -> u32 {
        if let Some(&id) = self.text_ids.get(&s) {
            return id;
        }
        let id = checked_id(self.texts.len());
        self.texts.push(s.clone());
        self.text_ids.insert(s, id);
        id
    }

    pub fn intern_date(&mut self, d: Date) -> u32 {
        if let Some(&id) = self.date_ids.get(&d) {
            return id;
        }
        let id = checked_id(self.dates.len());
        self.dates.push(d);
        self.date_ids.insert(d, id);
        id
    }

    pub fn intern_time(&mut self, t: Time) -> u32 {
        if let Some(&id) = self.time_ids.get(&t) {
            return id;
        }
        let id = checked_id(self.times.len());
        self.times.push(t);
        self.time_ids.insert(t, id);
        id
    }

    /// Resolve a text id. The caller guarantees the id came from a `Text`
    /// column (columns are homogeneous, so the declared type suffices).
    #[inline]
    pub fn text(&self, id: u32) -> &str {
        &self.texts[id as usize]
    }

    #[inline]
    pub fn date(&self, id: u32) -> Date {
        self.dates[id as usize]
    }

    #[inline]
    pub fn time(&self, id: u32) -> Time {
        self.times[id as usize]
    }

    /// Materialize the owned [`Value`] of a symbol, given the declared type
    /// of the column it came from (columns are homogeneous, so the type
    /// names the kind).
    pub fn value(&self, dtype: DataType, code: u32) -> Value {
        match dtype {
            DataType::Text => Value::Text(self.text(code).to_string()),
            DataType::Date => Value::Date(self.date(code)),
            DataType::Time => Value::Time(self.time(code)),
            _ => unreachable!("numeric columns are not dictionary-encoded"),
        }
    }

    /// Id of an already-interned text value, if present. Useful for probes
    /// that must not grow the dictionary.
    pub fn lookup_text(&self, s: &str) -> Option<u32> {
        self.text_ids.get(s).copied()
    }

    /// Number of distinct text symbols (the size of the text id space).
    pub fn text_count(&self) -> usize {
        self.texts.len()
    }

    /// Approximate heap bytes of the dictionary: forward string/ordinal
    /// storage plus the reverse maps (string bytes counted twice — the
    /// reverse text map owns its own copies).
    pub fn heap_bytes(&self) -> usize {
        let text_bytes: usize = self.texts.iter().map(|s| s.len()).sum();
        self.texts.len() * std::mem::size_of::<String>()
            + text_bytes * 2
            + self.text_ids.len() * (std::mem::size_of::<String>() + 4)
            + self.dates.len() * (std::mem::size_of::<Date>() * 2 + 4)
            + self.times.len() * (std::mem::size_of::<Time>() * 2 + 4)
    }
}

fn checked_id(len: usize) -> u32 {
    u32::try_from(len).expect("symbol table overflow (> 4B distinct values)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_stable() {
        let mut st = SymbolTable::new();
        let a = st.intern_text("Lake Tahoe");
        let b = st.intern_text_owned("Lake Tahoe".to_string());
        let c = st.intern_text("Crater Lake");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(st.text(a), "Lake Tahoe");
        assert_eq!(st.lookup_text("Crater Lake"), Some(c));
        assert_eq!(st.lookup_text("Atlantis"), None);
        assert_eq!(st.len(), 2);
    }

    #[test]
    fn each_kind_has_its_own_dense_id_space() {
        let mut st = SymbolTable::new();
        let t = st.intern_text("x");
        let d = st.intern_date(Date::new(2000, 1, 1));
        let h = st.intern_time(Time::new(9, 30, 0));
        // All three start at 0 in their own space.
        assert_eq!((t, d, h), (0, 0, 0));
        assert_eq!(st.intern_date(Date::new(2000, 1, 1)), d);
        assert_eq!(st.date(d), Date::new(2000, 1, 1));
        assert_eq!(st.time(h), Time::new(9, 30, 0));
        assert_eq!(st.len(), 3);
        assert_eq!(st.text_count(), 1);
    }
}
