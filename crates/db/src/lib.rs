//! # prism-db — the relational substrate for Prism
//!
//! The Prism demo paper (CIDR 2019) assumes a relational source database with
//! three pieces of supporting machinery that its discovery algorithm relies
//! on:
//!
//! 1. an **inverted index** mapping keywords to the `(table, column, row)`
//!    positions that contain them (Section 2.3: *"we validate a value
//!    constraint on a column … leveraging the inverted index"*),
//! 2. **column metadata collected during preprocessing** — data type, min/max
//!    value, maximum text length — used to check metadata constraints, and
//! 3. a **schema graph** whose nodes are tables and whose edges are joinable
//!    column pairs, which the candidate search walks to enumerate join trees.
//!
//! This crate provides all three, plus the storage and execution layer they
//! sit on: typed values ([`Value`], [`DataType`]), table schemas and foreign
//! keys ([`Catalog`]), **typed columnar storage** ([`Table`], [`Column`],
//! [`ColumnData`]) with per-database value interning ([`SymbolTable`]), an
//! immutable preprocessed [`Database`], and an executor for **Project–Join
//! (PJ) queries** ([`PjQuery`]) supporting both full evaluation and
//! early-exit existence checks (the workhorse of filter validation).
//! Execution follows a prepare/execute split: [`PjQuery::prepare`] compiles
//! a reusable [`PreparedQuery`] (validated once, planned once) that runs
//! against a clearing-not-reallocating [`ExecScratch`] — see the `exec`
//! module docs.
//!
//! ## Storage layout
//!
//! Each column is one contiguous primitive vector — `Vec<i64>` for ints,
//! `Vec<f64>` for decimals, `Vec<u32>` dictionary codes for text/date/time —
//! plus a null bitmap. Text, dates, and times are interned once per database
//! in the [`SymbolTable`], so equal values carry equal `u32` codes across
//! every table. Join indexes and the probe/backtrack loops of the executor
//! operate on the compact `u64` keys of [`Column::join_key`]; owned
//! [`Value`]s are materialized only at projection boundaries, and predicates
//! see zero-copy [`ValueRef`] views. See the `column` module docs for the
//! full join-key contract.
//!
//! At freeze, every column is partitioned into fixed-size row blocks with
//! per-block zone maps ([`BlockMeta`]; `PRISM_BLOCK_ROWS` or
//! [`DatabaseBuilder::with_block_rows`]), which the executor uses to skip
//! provably-empty blocks during scans ([`ScanPred`] range hints,
//! [`ExecStats::blocks_skipped`]); join indexes are CSR-shaped
//! ([`JoinIndex`]: sorted keys + offsets + row arena), and
//! [`Database::memory_report`] audits both byte-exactly.
//!
//! Everything is deterministic and in-memory; databases are built once via
//! [`DatabaseBuilder`] and never mutated afterwards, which is exactly the
//! "preprocess a priori, then interactively query" lifecycle of the paper.

pub mod batch;
pub mod column;
pub mod csv;
pub mod database;
pub mod error;
pub mod exec;
pub mod faults;
pub mod graph;
pub mod index;
pub mod interner;
pub mod schema;
pub mod sql;
pub mod stats;
pub mod table;
pub mod types;

pub use batch::ColumnBatch;
pub use column::{BlockMeta, Column, ColumnData, NullBitmap, Zone};
pub use csv::{infer_type, parse_csv};
pub use database::{
    Database, DatabaseBuilder, IngestReport, JoinIndexMemory, MemoryReport, TableMemory,
    DEFAULT_BLOCK_ROWS,
};
pub use error::DbError;
pub use exec::{
    ExecScratch, ExecStats, JoinCond, JoinOrder, PjQuery, PreparedQuery, ProjPred, RowCallback,
    ScanPred,
};
pub use faults::{FaultKind, FaultSite, FaultSpec};
pub use graph::{EdgeId, JoinEdge, JoinTree, SchemaGraph};
pub use index::{InvertedIndex, JoinIndex, Posting};
pub use interner::SymbolTable;
pub use schema::{Catalog, ColumnDef, ColumnRef, ForeignKey, TableId, TableSchema};
pub use sql::{canonical_key, render_sql};
pub use stats::{ColumnStats, EquiDepthHistogram, StatsStore};
pub use table::Table;
pub use types::{DataType, Date, KeySpace, Time, Value, ValueRef};
