//! Columnar row storage for one table.
//!
//! Storage is column-major and typed: each column is a [`Column`] holding a
//! contiguous primitive vector (`i64`/`f64`/dictionary codes) plus a null
//! bitmap — the access pattern of predicate evaluation, join probes, and
//! statistics collection. Text/date/time cells are interned in the owning
//! database's [`SymbolTable`], so cell reads take the interner by reference.

use crate::batch::{BatchData, ColumnBatch};
use crate::column::{Column, ColumnData, NULL_SYM};
use crate::error::DbError;
use crate::interner::SymbolTable;
use crate::schema::TableSchema;
use crate::types::{Value, ValueRef};

/// Row payload for one table. Insertions are validated against the schema at
/// insert time, so downstream code never re-checks types.
#[derive(Debug, Clone, Default)]
pub struct Table {
    columns: Vec<Column>,
    nrows: usize,
}

impl Table {
    /// An empty table shaped like `schema`.
    pub fn new(schema: &TableSchema) -> Table {
        Table {
            columns: schema
                .columns
                .iter()
                .map(|c| Column::new(c.dtype))
                .collect(),
            nrows: 0,
        }
    }

    /// Append one row, validating arity, types, and NOT NULL constraints.
    /// `Int` values widen to `Decimal` on insert into decimal columns so the
    /// stored column stays homogeneous. Text/date/time cells are interned
    /// into `syms`.
    pub fn push_row(
        &mut self,
        schema: &TableSchema,
        syms: &mut SymbolTable,
        row: Vec<Value>,
    ) -> Result<(), DbError> {
        if row.len() != schema.arity() {
            return Err(DbError::ArityMismatch {
                table: schema.name.clone(),
                expected: schema.arity(),
                got: row.len(),
            });
        }
        for (i, v) in row.iter().enumerate() {
            let def = schema.column(i as u32);
            if v.is_null() {
                if !def.nullable {
                    return Err(DbError::NullViolation {
                        table: schema.name.clone(),
                        column: def.name.clone(),
                    });
                }
                continue;
            }
            if !v.storable_as(def.dtype) {
                return Err(DbError::TypeMismatch {
                    table: schema.name.clone(),
                    column: def.name.clone(),
                    expected: def.dtype,
                    got: v.type_name(),
                });
            }
        }
        for (i, v) in row.into_iter().enumerate() {
            let def = schema.column(i as u32);
            let stored = match (v, def.dtype) {
                (Value::Int(x), crate::types::DataType::Decimal) => Value::Decimal(x as f64),
                (other, _) => other,
            };
            self.columns[i].push(stored, syms);
        }
        self.nrows += 1;
        Ok(())
    }

    /// Splice a typed [`ColumnBatch`] into storage. Validation runs **per
    /// batch** — arity, equal column lengths, kind-vs-type (with `Int`
    /// batches widening into `Decimal` columns), and NOT NULL via the
    /// batch's null counts — instead of per cell, and data lands via bulk
    /// vector extends and word-wise bitmap appends. Text/date/time cells
    /// are re-coded from the batch-local dictionary into `syms` in
    /// row-major first-occurrence order, so global code assignment (and
    /// therefore `Sym` zone maps) is identical to pushing the same rows
    /// through [`Table::push_row`].
    ///
    /// On error nothing is appended.
    pub fn append_batch(
        &mut self,
        schema: &TableSchema,
        syms: &mut SymbolTable,
        mut batch: ColumnBatch,
    ) -> Result<(), DbError> {
        if batch.arity() != schema.arity() {
            return Err(DbError::ArityMismatch {
                table: schema.name.clone(),
                expected: schema.arity(),
                got: batch.arity(),
            });
        }
        let rows = batch.rows();
        for (i, col) in batch.cols.iter().enumerate() {
            let def = schema.column(i as u32);
            if col.data.len() != rows {
                return Err(DbError::RaggedBatch {
                    table: schema.name.clone(),
                    column: def.name.clone(),
                    expected: rows,
                    got: col.data.len(),
                });
            }
            if !col.data.storable_as(def.dtype) {
                return Err(DbError::TypeMismatch {
                    table: schema.name.clone(),
                    column: def.name.clone(),
                    expected: def.dtype,
                    got: col.data.kind_name(),
                });
            }
            if !def.nullable && col.nulls.count() > 0 {
                return Err(DbError::NullViolation {
                    table: schema.name.clone(),
                    column: def.name.clone(),
                });
            }
        }
        if rows == 0 {
            return Ok(());
        }
        // Re-code dictionary cells into the shared interner. The pass is
        // row-major across the batch's sym-kind columns so first-occurrence
        // order — and thus global code assignment — matches the per-row
        // insert path exactly.
        let arity = batch.arity();
        let sym_cols: Vec<usize> = (0..arity)
            .filter(|&c| {
                matches!(
                    batch.cols[c].data,
                    BatchData::Text { .. } | BatchData::Date(_) | BatchData::Time(_)
                )
            })
            .collect();
        let mut global_codes: Vec<Vec<u32>> = vec![Vec::new(); arity];
        let mut remaps: Vec<Vec<u32>> = vec![Vec::new(); arity];
        for &c in &sym_cols {
            global_codes[c] = vec![NULL_SYM; rows];
            if let BatchData::Text { dict, .. } = &batch.cols[c].data {
                remaps[c] = vec![NULL_SYM; dict.len()];
            }
        }
        if !sym_cols.is_empty() {
            for row in 0..rows {
                for &c in &sym_cols {
                    let bc = &mut batch.cols[c];
                    if bc.nulls.is_null(row) {
                        continue;
                    }
                    global_codes[c][row] = match &mut bc.data {
                        BatchData::Text { codes, dict } => {
                            let local = codes[row] as usize;
                            let cached = remaps[c][local];
                            if cached != NULL_SYM {
                                cached
                            } else {
                                // The local string moves into the interner;
                                // later occurrences hit the remap cache.
                                let s = std::mem::take(&mut dict.strings[local]);
                                let id = syms.intern_text_owned(s);
                                remaps[c][local] = id;
                                id
                            }
                        }
                        BatchData::Date(v) => syms.intern_date(v[row]),
                        BatchData::Time(v) => syms.intern_time(v[row]),
                        _ => unreachable!("sym_cols holds only dictionary kinds"),
                    };
                }
            }
        }
        for (i, col) in batch.cols.iter_mut().enumerate() {
            let part = match &mut col.data {
                BatchData::Int(v) => ColumnData::Int(std::mem::take(v)),
                BatchData::Decimal(v) => ColumnData::Decimal(std::mem::take(v)),
                _ => ColumnData::Sym(std::mem::take(&mut global_codes[i])),
            };
            self.columns[i].append_parts(&part, &col.nulls);
        }
        self.nrows += rows;
        Ok(())
    }

    pub fn row_count(&self) -> usize {
        self.nrows
    }

    /// Borrowed cell view (zero-copy; the hot-path accessor).
    pub fn value_ref<'a>(&'a self, syms: &'a SymbolTable, row: u32, column: u32) -> ValueRef<'a> {
        self.columns[column as usize].value_ref(syms, row as usize)
    }

    /// Owned cell value (materializes text; boundary accessor).
    pub fn value(&self, syms: &SymbolTable, row: u32, column: u32) -> Value {
        self.value_ref(syms, row, column).to_value()
    }

    /// Typed column accessor, for scans over raw slices.
    pub fn column(&self, column: u32) -> &Column {
        &self.columns[column as usize]
    }

    /// Materialize one row (used by result rendering, not hot paths).
    pub fn row(&self, syms: &SymbolTable, row: u32) -> Vec<Value> {
        self.columns
            .iter()
            .map(|c| c.value_ref(syms, row as usize).to_value())
            .collect()
    }

    /// Compute per-block zone maps for every column at `block_rows` rows
    /// per block. The database freeze calls this once per table.
    pub(crate) fn freeze_blocks(&mut self, block_rows: usize) {
        for c in &mut self.columns {
            c.freeze_blocks(block_rows);
        }
    }

    /// Enable incremental zone accumulation on every column (see
    /// [`crate::column`] docs); the builder calls this at declaration with
    /// its resolved block size.
    pub(crate) fn set_zone_hint(&mut self, block_rows: usize) {
        for c in &mut self.columns {
            c.set_zone_hint(block_rows);
        }
    }

    /// Heap bytes of all column payloads (data vectors, null bitmaps, zone
    /// maps) — the per-table line of [`crate::Database::memory_report`].
    pub fn column_bytes(&self) -> usize {
        self.columns.iter().map(Column::heap_bytes).sum()
    }

    /// Zone-map bytes across all columns (part of
    /// [`Table::column_bytes`]).
    pub fn zone_map_bytes(&self) -> usize {
        self.columns.iter().map(Column::zone_map_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::types::DataType;

    fn schema() -> TableSchema {
        TableSchema {
            name: "Lake".into(),
            columns: vec![
                ColumnDef {
                    name: "Name".into(),
                    dtype: DataType::Text,
                    nullable: false,
                },
                ColumnDef {
                    name: "Area".into(),
                    dtype: DataType::Decimal,
                    nullable: true,
                },
            ],
        }
    }

    #[test]
    fn push_and_read_roundtrip() {
        let s = schema();
        let mut syms = SymbolTable::new();
        let mut t = Table::new(&s);
        t.push_row(
            &s,
            &mut syms,
            vec!["Lake Tahoe".into(), Value::Decimal(497.0)],
        )
        .unwrap();
        t.push_row(&s, &mut syms, vec!["Crater Lake".into(), Value::Null])
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.value(&syms, 0, 0), Value::text("Lake Tahoe"));
        assert_eq!(t.value_ref(&syms, 0, 0), ValueRef::Text("Lake Tahoe"));
        assert_eq!(t.value(&syms, 1, 1), Value::Null);
        assert_eq!(
            t.row(&syms, 0),
            vec![Value::text("Lake Tahoe"), Value::Decimal(497.0)]
        );
    }

    #[test]
    fn int_widens_into_decimal_column() {
        let s = schema();
        let mut syms = SymbolTable::new();
        let mut t = Table::new(&s);
        t.push_row(
            &s,
            &mut syms,
            vec!["Fort Peck Lake".into(), Value::Int(981)],
        )
        .unwrap();
        assert_eq!(t.value(&syms, 0, 1), Value::Decimal(981.0));
        assert_eq!(t.value(&syms, 0, 1).type_name(), "decimal");
        // The stored column is a homogeneous f64 vector.
        assert!(matches!(
            t.column(1).data(),
            crate::column::ColumnData::Decimal(_)
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let s = schema();
        let mut syms = SymbolTable::new();
        let mut t = Table::new(&s);
        let err = t.push_row(&s, &mut syms, vec!["x".into()]);
        assert!(matches!(err, Err(DbError::ArityMismatch { .. })));
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn type_mismatch_rejected() {
        let s = schema();
        let mut syms = SymbolTable::new();
        let mut t = Table::new(&s);
        let err = t.push_row(&s, &mut syms, vec![Value::Int(5), Value::Null]);
        assert!(matches!(err, Err(DbError::TypeMismatch { .. })));
    }

    #[test]
    fn null_violation_rejected() {
        let s = schema();
        let mut syms = SymbolTable::new();
        let mut t = Table::new(&s);
        let err = t.push_row(&s, &mut syms, vec![Value::Null, Value::Null]);
        assert!(matches!(err, Err(DbError::NullViolation { .. })));
    }

    #[test]
    fn column_slice_scans() {
        let s = schema();
        let mut syms = SymbolTable::new();
        let mut t = Table::new(&s);
        for (n, a) in [("a", 1.0), ("b", 2.0), ("c", 3.0)] {
            t.push_row(&s, &mut syms, vec![n.into(), Value::Decimal(a)])
                .unwrap();
        }
        // Typed access: the decimal column is a raw f64 slice.
        let crate::column::ColumnData::Decimal(areas) = t.column(1).data() else {
            panic!("decimal column expected");
        };
        assert_eq!(areas, &vec![1.0, 2.0, 3.0]);
        // Ref iteration sees the same values.
        let via_refs: Vec<f64> = t
            .column(1)
            .iter(&syms)
            .filter_map(|v| v.as_number())
            .collect();
        assert_eq!(via_refs, vec![1.0, 2.0, 3.0]);
    }
}
