//! Columnar row storage for one table.
//!
//! Storage is column-major and typed: each column is a [`Column`] holding a
//! contiguous primitive vector (`i64`/`f64`/dictionary codes) plus a null
//! bitmap — the access pattern of predicate evaluation, join probes, and
//! statistics collection. Text/date/time cells are interned in the owning
//! database's [`SymbolTable`], so cell reads take the interner by reference.

use crate::column::Column;
use crate::error::DbError;
use crate::interner::SymbolTable;
use crate::schema::TableSchema;
use crate::types::{Value, ValueRef};

/// Row payload for one table. Insertions are validated against the schema at
/// insert time, so downstream code never re-checks types.
#[derive(Debug, Clone, Default)]
pub struct Table {
    columns: Vec<Column>,
    nrows: usize,
}

impl Table {
    /// An empty table shaped like `schema`.
    pub fn new(schema: &TableSchema) -> Table {
        Table {
            columns: schema
                .columns
                .iter()
                .map(|c| Column::new(c.dtype))
                .collect(),
            nrows: 0,
        }
    }

    /// Append one row, validating arity, types, and NOT NULL constraints.
    /// `Int` values widen to `Decimal` on insert into decimal columns so the
    /// stored column stays homogeneous. Text/date/time cells are interned
    /// into `syms`.
    pub fn push_row(
        &mut self,
        schema: &TableSchema,
        syms: &mut SymbolTable,
        row: Vec<Value>,
    ) -> Result<(), DbError> {
        if row.len() != schema.arity() {
            return Err(DbError::ArityMismatch {
                table: schema.name.clone(),
                expected: schema.arity(),
                got: row.len(),
            });
        }
        for (i, v) in row.iter().enumerate() {
            let def = schema.column(i as u32);
            if v.is_null() {
                if !def.nullable {
                    return Err(DbError::NullViolation {
                        table: schema.name.clone(),
                        column: def.name.clone(),
                    });
                }
                continue;
            }
            if !v.storable_as(def.dtype) {
                return Err(DbError::TypeMismatch {
                    table: schema.name.clone(),
                    column: def.name.clone(),
                    expected: def.dtype,
                    got: v.type_name(),
                });
            }
        }
        for (i, v) in row.into_iter().enumerate() {
            let def = schema.column(i as u32);
            let stored = match (v, def.dtype) {
                (Value::Int(x), crate::types::DataType::Decimal) => Value::Decimal(x as f64),
                (other, _) => other,
            };
            self.columns[i].push(stored, syms);
        }
        self.nrows += 1;
        Ok(())
    }

    pub fn row_count(&self) -> usize {
        self.nrows
    }

    /// Borrowed cell view (zero-copy; the hot-path accessor).
    pub fn value_ref<'a>(&'a self, syms: &'a SymbolTable, row: u32, column: u32) -> ValueRef<'a> {
        self.columns[column as usize].value_ref(syms, row as usize)
    }

    /// Owned cell value (materializes text; boundary accessor).
    pub fn value(&self, syms: &SymbolTable, row: u32, column: u32) -> Value {
        self.value_ref(syms, row, column).to_value()
    }

    /// Typed column accessor, for scans over raw slices.
    pub fn column(&self, column: u32) -> &Column {
        &self.columns[column as usize]
    }

    /// Materialize one row (used by result rendering, not hot paths).
    pub fn row(&self, syms: &SymbolTable, row: u32) -> Vec<Value> {
        self.columns
            .iter()
            .map(|c| c.value_ref(syms, row as usize).to_value())
            .collect()
    }

    /// Compute per-block zone maps for every column at `block_rows` rows
    /// per block. The database freeze calls this once per table.
    pub(crate) fn freeze_blocks(&mut self, block_rows: usize) {
        for c in &mut self.columns {
            c.freeze_blocks(block_rows);
        }
    }

    /// Heap bytes of all column payloads (data vectors, null bitmaps, zone
    /// maps) — the per-table line of [`crate::Database::memory_report`].
    pub fn column_bytes(&self) -> usize {
        self.columns.iter().map(Column::heap_bytes).sum()
    }

    /// Zone-map bytes across all columns (part of
    /// [`Table::column_bytes`]).
    pub fn zone_map_bytes(&self) -> usize {
        self.columns.iter().map(Column::zone_map_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::types::DataType;

    fn schema() -> TableSchema {
        TableSchema {
            name: "Lake".into(),
            columns: vec![
                ColumnDef {
                    name: "Name".into(),
                    dtype: DataType::Text,
                    nullable: false,
                },
                ColumnDef {
                    name: "Area".into(),
                    dtype: DataType::Decimal,
                    nullable: true,
                },
            ],
        }
    }

    #[test]
    fn push_and_read_roundtrip() {
        let s = schema();
        let mut syms = SymbolTable::new();
        let mut t = Table::new(&s);
        t.push_row(
            &s,
            &mut syms,
            vec!["Lake Tahoe".into(), Value::Decimal(497.0)],
        )
        .unwrap();
        t.push_row(&s, &mut syms, vec!["Crater Lake".into(), Value::Null])
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.value(&syms, 0, 0), Value::text("Lake Tahoe"));
        assert_eq!(t.value_ref(&syms, 0, 0), ValueRef::Text("Lake Tahoe"));
        assert_eq!(t.value(&syms, 1, 1), Value::Null);
        assert_eq!(
            t.row(&syms, 0),
            vec![Value::text("Lake Tahoe"), Value::Decimal(497.0)]
        );
    }

    #[test]
    fn int_widens_into_decimal_column() {
        let s = schema();
        let mut syms = SymbolTable::new();
        let mut t = Table::new(&s);
        t.push_row(
            &s,
            &mut syms,
            vec!["Fort Peck Lake".into(), Value::Int(981)],
        )
        .unwrap();
        assert_eq!(t.value(&syms, 0, 1), Value::Decimal(981.0));
        assert_eq!(t.value(&syms, 0, 1).type_name(), "decimal");
        // The stored column is a homogeneous f64 vector.
        assert!(matches!(
            t.column(1).data(),
            crate::column::ColumnData::Decimal(_)
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let s = schema();
        let mut syms = SymbolTable::new();
        let mut t = Table::new(&s);
        let err = t.push_row(&s, &mut syms, vec!["x".into()]);
        assert!(matches!(err, Err(DbError::ArityMismatch { .. })));
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn type_mismatch_rejected() {
        let s = schema();
        let mut syms = SymbolTable::new();
        let mut t = Table::new(&s);
        let err = t.push_row(&s, &mut syms, vec![Value::Int(5), Value::Null]);
        assert!(matches!(err, Err(DbError::TypeMismatch { .. })));
    }

    #[test]
    fn null_violation_rejected() {
        let s = schema();
        let mut syms = SymbolTable::new();
        let mut t = Table::new(&s);
        let err = t.push_row(&s, &mut syms, vec![Value::Null, Value::Null]);
        assert!(matches!(err, Err(DbError::NullViolation { .. })));
    }

    #[test]
    fn column_slice_scans() {
        let s = schema();
        let mut syms = SymbolTable::new();
        let mut t = Table::new(&s);
        for (n, a) in [("a", 1.0), ("b", 2.0), ("c", 3.0)] {
            t.push_row(&s, &mut syms, vec![n.into(), Value::Decimal(a)])
                .unwrap();
        }
        // Typed access: the decimal column is a raw f64 slice.
        let crate::column::ColumnData::Decimal(areas) = t.column(1).data() else {
            panic!("decimal column expected");
        };
        assert_eq!(areas, &vec![1.0, 2.0, 3.0]);
        // Ref iteration sees the same values.
        let via_refs: Vec<f64> = t
            .column(1)
            .iter(&syms)
            .filter_map(|v| v.as_number())
            .collect();
        assert_eq!(via_refs, vec![1.0, 2.0, 3.0]);
    }
}
