//! Property-based tests of the substrate's core invariants: value ordering,
//! histogram estimates, join-tree enumeration, CSV round-trips, and PJ
//! execution against a brute-force oracle.

use prism_db::graph::{JoinEdge, SchemaGraph};
use prism_db::schema::{ColumnDef, ColumnRef, TableId};
use prism_db::stats::EquiDepthHistogram;
use prism_db::types::{DataType, Date, Time, Value};
use prism_db::{DatabaseBuilder, JoinCond, PjQuery};
use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-1000i64..1000).prop_map(Value::Int),
        (-1000i64..1000).prop_map(|n| Value::Decimal(n as f64 / 8.0)),
        "[a-z]{0,6}".prop_map(Value::text),
        (1900i16..2100, 1u8..=12, 1u8..=28).prop_map(|(y, m, d)| Value::Date(Date::new(y, m, d))),
        (0u8..24, 0u8..60, 0u8..60).prop_map(|(h, m, s)| Value::Time(Time::new(h, m, s))),
    ]
}

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #[test]
    fn value_ordering_is_total_and_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Transitivity.
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
        // Eq ⟹ equal hashes (required for hash joins).
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    #[test]
    fn histogram_fraction_is_monotone_and_bounded(
        mut values in proptest::collection::vec(-1e6f64..1e6, 1..300),
        buckets in 1usize..40,
        probes in proptest::collection::vec(-2e6f64..2e6, 1..20),
    ) {
        values.iter_mut().for_each(|v| *v = (*v * 8.0).round() / 8.0);
        let h = EquiDepthHistogram::build(values.clone(), buckets).expect("non-empty");
        let mut sorted_probes = probes.clone();
        sorted_probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &x in &sorted_probes {
            let f = h.fraction_leq(x);
            prop_assert!((0.0..=1.0).contains(&f), "fraction {f} out of bounds");
            prop_assert!(f + 1e-12 >= prev, "monotonicity violated: {f} < {prev}");
            prev = f;
        }
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert_eq!(h.fraction_leq(max), 1.0);
        // Sanity against truth at a midpoint probe.
        let probe = sorted_probes[sorted_probes.len() / 2];
        let truth = values.iter().filter(|&&v| v <= probe).count() as f64 / values.len() as f64;
        let est = h.fraction_leq(probe);
        prop_assert!((est - truth).abs() <= 0.5, "estimate {est} vs truth {truth}");
    }

    #[test]
    fn join_tree_enumeration_produces_unique_valid_trees(
        n_tables in 2u32..7,
        edge_pairs in proptest::collection::vec((0u32..7, 0u32..7), 1..12),
        max_tables in 1usize..5,
    ) {
        let edges: Vec<JoinEdge> = edge_pairs
            .iter()
            .filter(|(a, b)| a % n_tables != b % n_tables)
            .map(|(a, b)| JoinEdge {
                a: ColumnRef::new(TableId(a % n_tables), 0),
                b: ColumnRef::new(TableId(b % n_tables), 0),
            })
            .collect();
        let g = SchemaGraph::new(n_tables as usize, edges);
        let anchors: Vec<TableId> = (0..n_tables).map(TableId).collect();
        let trees = g.enumerate_trees(max_tables, &anchors);
        // Uniqueness.
        let mut keys: Vec<_> = trees.iter().map(|t| (t.edges.clone(), t.tables.clone())).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(keys.len(), before, "duplicate trees emitted");
        for t in &trees {
            prop_assert!(t.table_count() <= max_tables);
            // A tree spanning k tables has exactly k-1 edges (acyclicity).
            prop_assert_eq!(t.edges.len(), t.table_count() - 1);
            // Edges touch only the tree's tables (connectivity is implied by
            // the growth procedure + edge count).
            for &e in &t.edges {
                let edge = g.edge(e);
                prop_assert!(t.contains_table(edge.a.table));
                prop_assert!(t.contains_table(edge.b.table));
            }
        }
    }

    #[test]
    fn csv_roundtrip(table in proptest::collection::vec(
        proptest::collection::vec("[ -~]{0,12}", 3), 1..20)) {
        // Render with full quoting, then parse back.
        let text: String = table
            .iter()
            .map(|row| {
                row.iter()
                    .map(|f| format!("\"{}\"", f.replace('"', "\"\"")))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = prism_db::parse_csv(&text);
        prop_assert_eq!(parsed, table);
    }

    #[test]
    fn pj_join_matches_bruteforce_nested_loop(
        a_keys in proptest::collection::vec(0i64..8, 1..25),
        b_keys in proptest::collection::vec(0i64..8, 1..25),
    ) {
        let mut builder = DatabaseBuilder::new("p");
        builder.add_table("A", vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        builder.add_table("B", vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        for &k in &a_keys {
            builder.add_row("A", vec![Value::Int(k)]).unwrap();
        }
        for &k in &b_keys {
            builder.add_row("B", vec![Value::Int(k)]).unwrap();
        }
        builder.add_foreign_key("A", "k", "B", "k").unwrap();
        let db = builder.build();
        let q = PjQuery {
            nodes: vec![TableId(0), TableId(1)],
            joins: vec![JoinCond { left_node: 0, left_col: 0, right_node: 1, right_col: 0 }],
            projection: vec![(0, 0), (1, 0)],
        };
        let mut got: Vec<(i64, i64)> = q
            .execute(&db, usize::MAX)
            .unwrap()
            .into_iter()
            .map(|r| match (&r[0], &r[1]) {
                (Value::Int(x), Value::Int(y)) => (*x, *y),
                _ => unreachable!(),
            })
            .collect();
        let mut want: Vec<(i64, i64)> = a_keys
            .iter()
            .flat_map(|&x| b_keys.iter().filter(move |&&y| y == x).map(move |&y| (x, y)))
            .collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn typed_storage_roundtrips_values(
        rows in proptest::collection::vec(
            (arb_value(), arb_value(), arb_value()), 1..40),
    ) {
        // Insert arbitrary (nullable) rows into a table whose columns cover
        // every storage class, scan them back, and require identical Values.
        let mut builder = DatabaseBuilder::new("rt");
        builder
            .add_table(
                "T",
                vec![
                    ColumnDef::new("i", DataType::Int),
                    ColumnDef::new("s", DataType::Text),
                    ColumnDef::new("d", DataType::Date),
                ],
            )
            .unwrap();
        let mut want: Vec<Vec<Value>> = Vec::new();
        for (a, b, c) in &rows {
            // Coerce each generated value into its column's type (or NULL).
            let i = match a {
                Value::Int(x) => Value::Int(*x),
                _ => Value::Null,
            };
            let s = match b {
                Value::Text(x) => Value::text(x.clone()),
                _ => Value::Null,
            };
            let d = match c {
                Value::Date(x) => Value::Date(*x),
                _ => Value::Null,
            };
            builder
                .add_row("T", vec![i.clone(), s.clone(), d.clone()])
                .unwrap();
            want.push(vec![i, s, d]);
        }
        let db = builder.build();
        let t = db.catalog().table_id("T").unwrap();
        let table = db.table(t);
        for (r, expect) in want.iter().enumerate() {
            // Materialized rows round-trip exactly...
            prop_assert_eq!(&table.row(db.symbols(), r as u32), expect);
            // ...and the zero-copy views agree with them cell by cell.
            for c in 0..3u32 {
                prop_assert_eq!(
                    table.value_ref(db.symbols(), r as u32, c).to_value(),
                    expect[c as usize].clone()
                );
            }
        }
    }

    #[test]
    fn interned_symbols_are_stable_across_tables(
        names in proptest::collection::vec("[a-c]{1,3}", 1..30),
    ) {
        // The same text inserted into two different tables must carry the
        // same compact join key (the per-database interner guarantees it),
        // and distinct texts must carry distinct keys.
        let mut builder = DatabaseBuilder::new("sym");
        builder.add_table("A", vec![ColumnDef::new("s", DataType::Text)]).unwrap();
        builder.add_table("B", vec![ColumnDef::new("s", DataType::Text)]).unwrap();
        for n in &names {
            builder.add_row("A", vec![Value::text(n.clone())]).unwrap();
            builder.add_row("B", vec![Value::text(n.clone())]).unwrap();
        }
        let db = builder.build();
        let a = db.table(db.catalog().table_id("A").unwrap()).column(0);
        let b = db.table(db.catalog().table_id("B").unwrap()).column(0);
        let mut key_of: std::collections::HashMap<&str, u64> = Default::default();
        for (r, n) in names.iter().enumerate() {
            let ka = a.join_key(r).expect("non-null");
            let kb = b.join_key(r).expect("non-null");
            prop_assert_eq!(ka, kb, "same text, different key across tables");
            if let Some(&prev) = key_of.get(n.as_str()) {
                prop_assert_eq!(prev, ka, "key changed between occurrences");
            } else {
                for (other, &k) in &key_of {
                    prop_assert_ne!(k, ka, "distinct texts {} vs {} share a key", other, n);
                }
                key_of.insert(n, ka);
            }
        }
    }

    #[test]
    fn int_widening_preserves_join_and_scan_semantics(
        ints in proptest::collection::vec(-1000i64..1000, 1..30),
    ) {
        // Int values inserted into a Decimal column widen on insert; the
        // stored column must behave exactly like one built from Decimals.
        let mut builder = DatabaseBuilder::new("w");
        builder.add_table("T", vec![ColumnDef::new("x", DataType::Decimal)]).unwrap();
        for &i in &ints {
            builder.add_row("T", vec![Value::Int(i)]).unwrap();
        }
        let db = builder.build();
        let table = db.table(db.catalog().table_id("T").unwrap());
        for (r, &i) in ints.iter().enumerate() {
            let got = table.value(db.symbols(), r as u32, 0);
            prop_assert_eq!(&got, &Value::Decimal(i as f64));
            prop_assert_eq!(got.type_name(), "decimal");
            // The widened cell still joins against an Int cell of the same
            // number: identical compact keys.
            prop_assert_eq!(
                table.column(0).join_key(r).unwrap(),
                (i as f64).to_bits()
            );
        }
    }

    #[test]
    fn stats_selectivity_eq_sums_to_one_over_distincts(
        keys in proptest::collection::vec(0i64..5, 1..60),
    ) {
        let mut builder = DatabaseBuilder::new("p");
        builder.add_table("T", vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        for &k in &keys {
            builder.add_row("T", vec![Value::Int(k)]).unwrap();
        }
        let db = builder.build();
        let col = db.catalog().column_ref("T", "k").unwrap();
        let stats = db.stats().column(col);
        let total: f64 = (0..5).map(|k| stats.selectivity_eq(&Value::Int(k))).sum();
        prop_assert!((total - 1.0).abs() < 0.05, "selectivities sum to {total}");
    }
}
