//! Property tests of the prepare/execute split: a [`PreparedQuery`] run
//! repeatedly against one **reused, dirty** [`ExecScratch`] must return
//! rows identical to a fresh [`PjQuery::for_each_row`] per call — across
//! scans, joins, range-hinted predicates, dictionary predicates (past the
//! memo warmup), and both a many-block (64 rows) and a single-block-heavy
//! (4096 rows) layout.

use prism_db::schema::ColumnDef;
use prism_db::types::{DataType, Value, ValueRef};
use prism_db::{
    Database, DatabaseBuilder, ExecScratch, ExecStats, JoinCond, PjQuery, ProjPred, ScanPred,
};
use proptest::prelude::*;

const BLOCK_SIZES: [usize; 2] = [64, 4096];

/// Nullable (int, tag) rows; tags draw from a small dictionary so verdict
/// memos allocate and must be cleared between runs.
fn arb_row() -> impl Strategy<Value = (Option<i64>, Option<u8>)> {
    (
        prop_oneof![
            (-100i64..100).prop_map(Some),
            (-100i64..100).prop_map(Some),
            Just(None),
            Just(Some(i64::MAX)),
            Just(Some(i64::MAX - 1)),
        ],
        prop_oneof![(0u8..6).prop_map(Some), Just(None)],
    )
}

fn build_db(rows: &[(Option<i64>, Option<u8>)], block_rows: usize) -> Database {
    let mut b = DatabaseBuilder::new("prepared").with_block_rows(block_rows);
    b.add_table(
        "T",
        vec![
            ColumnDef::new("x", DataType::Int),
            ColumnDef::new("tag", DataType::Text),
        ],
    )
    .unwrap();
    b.add_table("F", vec![ColumnDef::new("p", DataType::Int)])
        .unwrap();
    for (x, tag) in rows {
        b.add_row(
            "T",
            vec![
                x.map(Value::Int).unwrap_or(Value::Null),
                tag.map(|t| format!("tag{t}").into()).unwrap_or(Value::Null),
            ],
        )
        .unwrap();
        // FK side references a coarsened key so probes hit multiple rows.
        b.add_row(
            "F",
            vec![x.map(|x| Value::Int(x / 2)).unwrap_or(Value::Null)],
        )
        .unwrap();
    }
    b.add_foreign_key("F", "p", "T", "x").unwrap();
    b.build()
}

fn join_query(db: &Database) -> PjQuery {
    PjQuery {
        nodes: vec![
            db.catalog().table_id("F").unwrap(),
            db.catalog().table_id("T").unwrap(),
        ],
        joins: vec![JoinCond {
            left_node: 0,
            left_col: 0,
            right_node: 1,
            right_col: 0,
        }],
        projection: vec![(1, 0), (1, 1)],
    }
}

fn collect_prepared(
    db: &Database,
    prepared: &prism_db::PreparedQuery,
    preds: &[ProjPred<'_>],
    scratch: &mut ExecScratch,
) -> Vec<Vec<Value>> {
    let mut stats = ExecStats::default();
    let mut rows = Vec::new();
    prepared
        .for_each_row(db, preds, scratch, &mut stats, &mut |r| {
            rows.push(r.iter().map(|v| v.to_value()).collect());
            true
        })
        .unwrap();
    rows
}

fn collect_fresh(db: &Database, q: &PjQuery, preds: &[ProjPred<'_>]) -> Vec<Vec<Value>> {
    let mut stats = ExecStats::default();
    let mut rows = Vec::new();
    q.for_each_row(db, preds, &mut stats, &mut |r| {
        rows.push(r.iter().map(|v| v.to_value()).collect());
        true
    })
    .unwrap();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The same prepared join query, executed three times through one
    /// dirty scratch with *different* predicates per run (same shape),
    /// matches the per-call wrapper run-for-run.
    #[test]
    fn prepared_join_with_dirty_scratch_matches_fresh_runs(
        rows in proptest::collection::vec(arb_row(), 1..150),
        lo in -110i64..110,
        width in 0i64..80,
        tag_a in 0u8..6,
        tag_b in 0u8..6,
    ) {
        let (lo, hi) = (lo as f64, (lo + width) as f64);
        for bs in BLOCK_SIZES {
            let db = build_db(&rows, bs);
            let q = join_query(&db);
            let in_range = move |v: ValueRef<'_>| {
                v.as_number().is_some_and(|x| lo <= x && x <= hi)
            };
            let tag_a_s = format!("tag{tag_a}");
            let tag_b_s = format!("tag{tag_b}");
            let is_a = |v: ValueRef<'_>| v.as_text() == Some(tag_a_s.as_str());
            let is_b = |v: ValueRef<'_>| v.as_text() == Some(tag_b_s.as_str());
            let runs: [[ProjPred<'_>; 2]; 3] = [
                // Range-hinted numeric + dictionary predicate.
                [
                    Some(ScanPred::new(&in_range).with_range(lo, hi)),
                    Some(ScanPred::new(&is_a)),
                ],
                // Different tag through the same (reused, dirty) memos.
                [
                    Some(ScanPred::new(&in_range).with_range(lo, hi)),
                    Some(ScanPred::new(&is_b)),
                ],
                // Unhinted variant of the same shape.
                [Some(ScanPred::new(&in_range)), Some(ScanPred::new(&is_a))],
            ];
            let prepared = q.prepare(&db, &runs[0]).unwrap();
            let mut scratch = ExecScratch::new();
            for (i, preds) in runs.iter().enumerate() {
                let got = collect_prepared(&db, &prepared, preds, &mut scratch);
                let want = collect_fresh(&db, &q, preds);
                prop_assert_eq!(&got, &want, "run {} at block_rows={}", i, bs);
            }
        }
    }

    /// Single-table scans: one scratch serves many prepared queries of
    /// *different* shapes in sequence (shape changes resize, never corrupt).
    #[test]
    fn one_scratch_serves_alternating_query_shapes(
        rows in proptest::collection::vec(arb_row(), 1..150),
        lo in -110i64..110,
        width in 0i64..80,
    ) {
        let (lo, hi) = (lo as f64, (lo + width) as f64);
        for bs in BLOCK_SIZES {
            let db = build_db(&rows, bs);
            let t = db.catalog().table_id("T").unwrap();
            let scan_x = PjQuery { nodes: vec![t], joins: vec![], projection: vec![(0, 0)] };
            let scan_both = PjQuery { nodes: vec![t], joins: vec![], projection: vec![(0, 0), (0, 1)] };
            let in_range = move |v: ValueRef<'_>| {
                v.as_number().is_some_and(|x| lo <= x && x <= hi)
            };
            let any_tag = |v: ValueRef<'_>| v.as_text().is_some_and(|s| s.starts_with("tag"));
            let preds_x: [ProjPred<'_>; 1] = [Some(ScanPred::new(&in_range).with_range(lo, hi))];
            let preds_both: [ProjPred<'_>; 2] =
                [Some(ScanPred::new(&in_range)), Some(ScanPred::new(&any_tag))];
            let px = scan_x.prepare(&db, &preds_x).unwrap();
            let pboth = scan_both.prepare(&db, &preds_both).unwrap();
            let mut scratch = ExecScratch::new();
            for round in 0..2 {
                let got = collect_prepared(&db, &px, &preds_x, &mut scratch);
                prop_assert_eq!(&got, &collect_fresh(&db, &scan_x, &preds_x),
                    "scan_x round {} block_rows={}", round, bs);
                let got = collect_prepared(&db, &pboth, &preds_both, &mut scratch);
                prop_assert_eq!(&got, &collect_fresh(&db, &scan_both, &preds_both),
                    "scan_both round {} block_rows={}", round, bs);
            }
        }
    }
}

/// Deterministic: prepared existence probes over a dictionary column far
/// past the memo warmup stay correct across many reuses, and the counters
/// prove the amortization (0 extra plans, N-1 scratch reuses).
#[test]
fn repeated_existence_probes_amortize() {
    let mut b = DatabaseBuilder::new("probes");
    b.add_table("T", vec![ColumnDef::new("tag", DataType::Text).not_null()])
        .unwrap();
    for i in 0..500 {
        b.add_row("T", vec![format!("tag{}", i % 7).into()])
            .unwrap();
    }
    let db = b.build();
    let q = PjQuery {
        nodes: vec![db.catalog().table_id("T").unwrap()],
        joins: vec![],
        projection: vec![(0, 0)],
    };
    let missing = |v: ValueRef<'_>| v.as_text() == Some("atlantis");
    let preds = [Some(ScanPred::new(&missing))];
    let prepared = q.prepare(&db, &preds).unwrap();
    let mut scratch = ExecScratch::new();
    let mut stats = ExecStats::default();
    for _ in 0..100 {
        let found = prepared
            .exists_matching(&db, &preds, &mut scratch, &mut stats)
            .unwrap();
        assert!(!found);
    }
    assert_eq!(stats.plans_built, 0, "prepared once, outside the loop");
    assert_eq!(stats.scratch_reuses, 99);
}
