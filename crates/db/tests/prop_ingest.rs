//! Property tests for the streaming CSV ingest path: the zero-`Value`
//! loader must be observationally identical to the legacy per-row loader
//! (same values, same NULLs, same interned symbols, same zone maps), and
//! the chunked parallel parse must be byte-for-byte equivalent to the
//! sequential one on arbitrary quoted/CRLF/embedded-newline inputs.

use prism_db::types::Value;
use prism_db::{Database, DatabaseBuilder};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// One CSV field: raw content plus "the renderer must quote this even if
/// it doesn't have to" (exercises the quoted-vs-unquoted trim split).
type Field = (String, bool);
type Row = (Field, Field, Field, Field);

fn arb_bool() -> impl Strategy<Value = bool> {
    (0usize..2).prop_map(|b| b == 1)
}

fn arb_quoted<S: Strategy<Value = String>>(s: S) -> impl Strategy<Value = Field> {
    (s, arb_bool())
}

/// Free text drawn from printable ASCII plus every CSV special character:
/// commas, quotes, bare newlines, and carriage returns.
fn arb_free() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            (0x20u32..0x7F).prop_map(|c| char::from_u32(c).expect("printable ascii")),
            Just('\n'),
            Just('\r'),
            Just('"'),
            Just(','),
        ],
        0..8,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

/// Int-ish cells: canonical, sign-prefixed, padded, or NULL. A rare free
/// cell forces the demote path (Int → Text restart in chunk workers).
fn arb_int_cell() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        (-9_999i64..9_999).prop_map(|n| n.to_string()),
        (0i64..999).prop_map(|n| format!(" +{n} ")),
        "[a-z]{1,3}",
    ]
}

fn arb_dec_cell() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        (-9_999i64..9_999).prop_map(|n| format!("{n}.25")),
        (-40i64..40).prop_map(|n| format!("  {n}e2")),
    ]
}

fn arb_date_cell() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        (1900i64..2100, 1i64..=12, 1i64..=28).prop_map(|(y, m, d)| format!("{y}-{m:02}-{d:02}")),
    ]
}

fn arb_row() -> impl Strategy<Value = Row> {
    (
        arb_quoted(arb_int_cell()),
        arb_quoted(arb_dec_cell()),
        arb_quoted(arb_date_cell()),
        arb_quoted(arb_free()),
    )
}

fn needs_quote(s: &str) -> bool {
    s.contains([',', '"', '\n', '\r'])
}

fn render_field(out: &mut String, (s, force): &Field) {
    if *force || needs_quote(s) {
        out.push('"');
        for ch in s.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(s);
    }
}

/// Render rows under a fixed four-column header. `crlf` picks the line
/// terminator; `trailing_nl` decides whether the last row is terminated.
fn render_csv(rows: &[Row], crlf: bool, trailing_nl: bool) -> String {
    let eol = if crlf { "\r\n" } else { "\n" };
    let mut out = String::from("i,d,when,s");
    for (a, b, c, d) in rows {
        out.push_str(eol);
        render_field(&mut out, a);
        out.push(',');
        render_field(&mut out, b);
        out.push(',');
        render_field(&mut out, c);
        out.push(',');
        render_field(&mut out, d);
    }
    if trailing_nl {
        out.push_str(eol);
    }
    out
}

enum Loader {
    Streaming(usize),
    Legacy,
}

fn build(text: &str, loader: Loader, block_rows: Option<usize>) -> Database {
    let mut b = DatabaseBuilder::new("P");
    if let Some(rows) = block_rows {
        b = b.with_block_rows(rows);
    }
    match loader {
        Loader::Streaming(threads) => b.add_table_from_csv_threads("T", text, threads),
        Loader::Legacy => b.add_table_from_csv_legacy("T", text),
    }
    .expect("generated CSV is well-formed");
    b.build()
}

/// Row-identical: same values (symbols resolved), same NULL structure,
/// same inferred types, and identical per-block zone maps.
fn assert_equiv(a: &Database, b: &Database, ctx: &str) -> Result<(), TestCaseError> {
    let ta = a.table(a.catalog().table_id("T").expect("table exists"));
    let tb = b.table(b.catalog().table_id("T").expect("table exists"));
    prop_assert_eq!(ta.row_count(), tb.row_count(), "{}: row counts differ", ctx);
    for r in 0..ta.row_count() as u32 {
        prop_assert_eq!(
            ta.row(a.symbols(), r),
            tb.row(b.symbols(), r),
            "{}: row {} differs",
            ctx,
            r
        );
    }
    for c in 0..4u32 {
        let ca = ta.column(c);
        let cb = tb.column(c);
        prop_assert_eq!(ca.dtype(), cb.dtype(), "{}: col {} dtype", ctx, c);
        prop_assert_eq!(
            ca.null_count(),
            cb.null_count(),
            "{}: col {} null count",
            ctx,
            c
        );
        prop_assert_eq!(
            ca.block_meta(),
            cb.block_meta(),
            "{}: col {} zone maps",
            ctx,
            c
        );
        prop_assert_eq!(
            ca.summary_meta(),
            cb.summary_meta(),
            "{}: col {} summary zone",
            ctx,
            c
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Satellite: the streaming loader is an exact stand-in for the legacy
    /// `Value`-per-cell `add_row` path, at the default block size and at
    /// the paper-benchmark `PRISM_BLOCK_ROWS=64` granularity.
    #[test]
    fn streaming_loader_matches_legacy_add_row_path(
        rows in proptest::collection::vec(arb_row(), 0..24),
        crlf in arb_bool(),
        trailing_nl in arb_bool(),
    ) {
        let text = render_csv(&rows, crlf, trailing_nl);
        for block_rows in [None, Some(64)] {
            let streaming = build(&text, Loader::Streaming(1), block_rows);
            let legacy = build(&text, Loader::Legacy, block_rows);
            assert_equiv(&streaming, &legacy, &format!("block_rows {block_rows:?}"))?;
            prop_assert_eq!(streaming.ingest_report().csv_rows, rows.len());
        }
    }
}

proptest! {
    // Each case tiles the generated rows past the parallel-split threshold
    // (~64 KiB), so keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite: chunked parallel parsing is equivalent to the sequential
    /// parse for arbitrary quoted/CRLF/embedded-newline inputs — chunk
    /// splits never land inside a quoted field, and per-chunk batches
    /// splice back in order.
    #[test]
    fn chunked_parallel_parse_matches_sequential(
        rows in proptest::collection::vec(arb_row(), 1..16),
        crlf in arb_bool(),
        trailing_nl in arb_bool(),
    ) {
        // Tile the data section until the input is big enough to split.
        let one = render_csv(&rows, crlf, true);
        let (header, data) = one.split_once(if crlf { "\r\n" } else { "\n" }).expect("header row");
        let copies = 70 * 1024 / data.len() + 1;
        let mut text = String::with_capacity(header.len() + 1 + copies * data.len());
        text.push_str(header);
        text.push_str(if crlf { "\r\n" } else { "\n" });
        for _ in 0..copies {
            text.push_str(data);
        }
        if !trailing_nl {
            while text.ends_with(['\r', '\n']) {
                text.pop();
            }
        }

        let sequential = build(&text, Loader::Streaming(1), None);
        for threads in [2usize, 4] {
            let parallel = build(&text, Loader::Streaming(threads), None);
            prop_assert!(
                parallel.ingest_report().parse_threads >= 2,
                "input of {} bytes did not split",
                text.len()
            );
            assert_equiv(&sequential, &parallel, &format!("{threads} threads"))?;
        }
    }
}

/// Quoted padding survives the streaming path and the legacy path alike
/// (the trim fix is shared), while unquoted padding still trims — checked
/// here end to end through both loaders rather than at the field level.
#[test]
fn quoted_padding_is_preserved_by_both_loaders() {
    let text = "s,t\n\"  padded  \",  bare  \n";
    for loader in [Loader::Streaming(1), Loader::Legacy] {
        let db = build(text, loader, None);
        let t = db.table(db.catalog().table_id("T").unwrap());
        assert_eq!(
            t.row(db.symbols(), 0),
            vec![Value::text("  padded  "), Value::text("bare")]
        );
    }
}
