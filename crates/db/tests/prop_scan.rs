//! Property tests of the block-partitioned scan layer and CSR join
//! indexes: zone-map-pruned scans and CSR probes must return row sets
//! identical to the unpruned / `HashMap` baselines on generated data
//! covering NULLs, `-0.0`, `i64::MAX`-adjacent keys, and predicates that
//! straddle block boundaries — at both a many-block (64 rows) and a
//! few-block (4096 rows) layout.

use prism_db::schema::ColumnDef;
use prism_db::types::{DataType, Value, ValueRef};
use prism_db::{Database, DatabaseBuilder, ExecStats, JoinCond, PjQuery, ScanPred};
use proptest::prelude::*;
use std::collections::HashMap;

/// The two block layouts the scan layer must agree across: 64 rows/block
/// exercises many-block pruning, 4096 usually leaves one block per table.
const BLOCK_SIZES: [usize; 2] = [64, 4096];

/// Nullable i64 cells with the hostile corners mixed in: `i64::MAX`
/// neighbors (which collide in the f64 view) and `i64::MIN`.
fn arb_int_cell() -> impl Strategy<Value = Option<i64>> {
    prop_oneof![
        (-200i64..200).prop_map(Some),
        (-200i64..200).prop_map(Some),
        (-200i64..200).prop_map(Some),
        Just(None),
        Just(Some(i64::MAX)),
        Just(Some(i64::MAX - 1)),
        Just(Some(i64::MIN)),
    ]
}

/// Nullable f64 cells including both zero signs (normalized on insert).
fn arb_dec_cell() -> impl Strategy<Value = Option<f64>> {
    prop_oneof![
        (-1600i64..1600).prop_map(|n| Some(n as f64 / 8.0)),
        (-1600i64..1600).prop_map(|n| Some(n as f64 / 8.0)),
        Just(None),
        Just(Some(-0.0)),
        Just(Some(0.0)),
    ]
}

fn int_db(cells: &[Option<i64>], block_rows: usize) -> Database {
    let mut b = DatabaseBuilder::new("ints").with_block_rows(block_rows);
    b.add_table("T", vec![ColumnDef::new("x", DataType::Int)])
        .unwrap();
    for c in cells {
        b.add_row("T", vec![c.map(Value::Int).unwrap_or(Value::Null)])
            .unwrap();
    }
    b.build()
}

fn dec_db(cells: &[Option<f64>], block_rows: usize) -> Database {
    let mut b = DatabaseBuilder::new("decs").with_block_rows(block_rows);
    b.add_table("T", vec![ColumnDef::new("x", DataType::Decimal)])
        .unwrap();
    for c in cells {
        b.add_row("T", vec![c.map(Value::Decimal).unwrap_or(Value::Null)])
            .unwrap();
    }
    b.build()
}

/// All rows of the single-column table `T` whose cell passes `pred`,
/// executed through the scan path with the given range hint.
fn scan_rows(
    db: &Database,
    hint: Option<(f64, f64)>,
    pred: &dyn Fn(ValueRef<'_>) -> bool,
) -> (Vec<Value>, ExecStats) {
    let q = PjQuery {
        nodes: vec![db.catalog().table_id("T").unwrap()],
        joins: vec![],
        projection: vec![(0, 0)],
    };
    let mut sp = ScanPred::new(pred);
    if let Some((lo, hi)) = hint {
        sp = sp.with_range(lo, hi);
    }
    let mut stats = ExecStats::default();
    let mut rows = Vec::new();
    q.for_each_row(db, &[Some(sp)], &mut stats, &mut |r| {
        rows.push(r[0].to_value());
        true
    })
    .unwrap();
    (rows, stats)
}

proptest! {
    /// Range scans over Int columns: the zone-pruned scan returns exactly
    /// the rows of the unpruned scan and of a brute-force filter, at both
    /// block layouts. Bounds are drawn near block-boundary row values, so
    /// predicates regularly straddle block edges.
    #[test]
    fn int_range_scan_pruned_equals_unpruned(
        cells in proptest::collection::vec(arb_int_cell(), 1..300),
        lo in -260i64..260,
        width in 0i64..140,
    ) {
        let (lo, hi) = (lo as f64, (lo + width) as f64);
        let pred = move |v: ValueRef<'_>| v.as_number().is_some_and(|x| lo <= x && x <= hi);
        let want: Vec<Value> = cells
            .iter()
            .filter_map(|c| c.filter(|&x| lo <= x as f64 && x as f64 <= hi))
            .map(Value::Int)
            .collect();
        for bs in BLOCK_SIZES {
            let db = int_db(&cells, bs);
            let (pruned, pstats) = scan_rows(&db, Some((lo, hi)), &pred);
            let (unpruned, ustats) = scan_rows(&db, None, &pred);
            prop_assert_eq!(&pruned, &unpruned, "block_rows={}", bs);
            prop_assert_eq!(&pruned, &want, "block_rows={}", bs);
            prop_assert_eq!(ustats.blocks_skipped, 0);
            // Pruning may only reduce row work, never grow it.
            prop_assert!(pstats.rows_examined <= ustats.rows_examined);
        }
    }

    /// Same for Decimal columns, with signed zeros and NULLs in play.
    #[test]
    fn dec_range_scan_pruned_equals_unpruned(
        cells in proptest::collection::vec(arb_dec_cell(), 1..300),
        lo in -1700i64..1700,
        width in 0i64..700,
    ) {
        let (lo, hi) = (lo as f64 / 8.0, (lo + width) as f64 / 8.0);
        let pred = move |v: ValueRef<'_>| v.as_number().is_some_and(|x| lo <= x && x <= hi);
        let want: Vec<Value> = cells
            .iter()
            .filter_map(|c| c.filter(|&x| lo <= x && x <= hi))
            .map(|x| Value::Decimal(if x == 0.0 { 0.0 } else { x }))
            .collect();
        for bs in BLOCK_SIZES {
            let db = dec_db(&cells, bs);
            let (pruned, _) = scan_rows(&db, Some((lo, hi)), &pred);
            let (unpruned, _) = scan_rows(&db, None, &pred);
            prop_assert_eq!(&pruned, &unpruned, "block_rows={}", bs);
            prop_assert_eq!(&pruned, &want, "block_rows={}", bs);
        }
    }

    /// An empty hull (`lo > hi`) must prune every block and return nothing —
    /// it asserts the predicate rejects all numeric cells.
    #[test]
    fn empty_hull_scans_nothing(
        cells in proptest::collection::vec(arb_int_cell(), 1..200),
    ) {
        let pred = |_: ValueRef<'_>| false;
        for bs in BLOCK_SIZES {
            let db = int_db(&cells, bs);
            let (rows, stats) = scan_rows(&db, Some((f64::INFINITY, f64::NEG_INFINITY)), &pred);
            prop_assert!(rows.is_empty());
            prop_assert_eq!(stats.rows_examined, 0);
            prop_assert_eq!(stats.blocks_skipped, cells.len().div_ceil(bs) as u64);
        }
    }

    /// CSR join indexes answer every probe — present keys, absent keys,
    /// `i64::MAX`-adjacent keys — identically to a `HashMap<u64, Vec<u32>>`
    /// built the way the old layout was.
    #[test]
    fn csr_probes_match_hashmap_baseline(
        fk_cells in proptest::collection::vec(arb_int_cell(), 1..200),
        probes in proptest::collection::vec(arb_int_cell(), 1..40),
    ) {
        for bs in BLOCK_SIZES {
            let mut b = DatabaseBuilder::new("csr").with_block_rows(bs);
            b.add_table("P", vec![ColumnDef::new("id", DataType::Int)]).unwrap();
            b.add_table("F", vec![ColumnDef::new("p", DataType::Int)]).unwrap();
            for c in &fk_cells {
                b.add_row("P", vec![c.map(Value::Int).unwrap_or(Value::Null)]).unwrap();
            }
            b.add_row("F", vec![Value::Null]).unwrap();
            b.add_foreign_key("F", "p", "P", "id").unwrap();
            let db = b.build();
            let p_id = db.catalog().column_ref("P", "id").unwrap();
            let ix = db.join_index(p_id).expect("FK endpoint indexed");
            // The old layout, rebuilt by hand: insertion order per key.
            let mut baseline: HashMap<u64, Vec<u32>> = HashMap::new();
            for (r, c) in fk_cells.iter().enumerate() {
                if let Some(x) = c {
                    baseline.entry(*x as u64).or_default().push(r as u32);
                }
            }
            prop_assert_eq!(ix.len(), baseline.len());
            prop_assert_eq!(
                ix.indexed_rows(),
                baseline.values().map(Vec::len).sum::<usize>()
            );
            for key in fk_cells.iter().chain(probes.iter()).flatten() {
                let k = *key as u64;
                let want = baseline.get(&k).map(|v| v.as_slice()).unwrap_or(&[]);
                prop_assert_eq!(ix.rows(k), want, "key {}", key);
                prop_assert_eq!(ix.contains_key(k), !want.is_empty());
            }
        }
    }

    /// End-to-end: an Int equi-join (with NULLs and `i64::MAX` neighbors on
    /// both sides) through CSR probes and block-pruned scans matches a
    /// brute-force nested loop, at both block layouts.
    #[test]
    fn pj_join_over_csr_matches_bruteforce(
        a_cells in proptest::collection::vec(arb_int_cell(), 1..120),
        b_cells in proptest::collection::vec(arb_int_cell(), 1..120),
    ) {
        let mut want: Vec<(i64, i64)> = a_cells
            .iter()
            .flatten()
            .flat_map(|&x| b_cells.iter().flatten().filter(move |&&y| y == x).map(move |&y| (x, y)))
            .collect();
        want.sort_unstable();
        for bs in BLOCK_SIZES {
            let mut builder = DatabaseBuilder::new("join").with_block_rows(bs);
            builder.add_table("A", vec![ColumnDef::new("k", DataType::Int)]).unwrap();
            builder.add_table("B", vec![ColumnDef::new("k", DataType::Int)]).unwrap();
            for c in &a_cells {
                builder.add_row("A", vec![c.map(Value::Int).unwrap_or(Value::Null)]).unwrap();
            }
            for c in &b_cells {
                builder.add_row("B", vec![c.map(Value::Int).unwrap_or(Value::Null)]).unwrap();
            }
            builder.add_foreign_key("A", "k", "B", "k").unwrap();
            let db = builder.build();
            let q = PjQuery {
                nodes: vec![
                    db.catalog().table_id("A").unwrap(),
                    db.catalog().table_id("B").unwrap(),
                ],
                joins: vec![JoinCond { left_node: 0, left_col: 0, right_node: 1, right_col: 0 }],
                projection: vec![(0, 0), (1, 0)],
            };
            let mut got: Vec<(i64, i64)> = q
                .execute(&db, usize::MAX)
                .unwrap()
                .into_iter()
                .map(|r| match (&r[0], &r[1]) {
                    (Value::Int(x), Value::Int(y)) => (*x, *y),
                    other => panic!("non-int row {other:?}"),
                })
                .collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &want, "block_rows={}", bs);
        }
    }
}

/// Deterministic block-boundary regression: a hull whose endpoints sit
/// exactly on block-edge values must keep both edge rows at every layout.
#[test]
fn block_boundary_straddling_hull_keeps_edge_rows() {
    let cells: Vec<Option<i64>> = (0..256).map(Some).collect();
    for bs in BLOCK_SIZES {
        let db = int_db(&cells, bs);
        // [63, 64] straddles the 64-row block edge; [64, 127] starts on it.
        for (lo, hi, count) in [(63.0, 64.0, 2usize), (64.0, 127.0, 64), (0.0, 0.0, 1)] {
            let pred = move |v: ValueRef<'_>| v.as_number().is_some_and(|x| lo <= x && x <= hi);
            let (rows, _) = scan_rows(&db, Some((lo, hi)), &pred);
            assert_eq!(rows.len(), count, "[{lo}, {hi}] at block_rows={bs}");
        }
    }
}
