//! # prism — multiresolution schema mapping (facade crate)
//!
//! Re-exports the full public API of the Prism reproduction. See the README
//! for a tour; [`DiscoveryService`] is the owned multi-session entry point
//! and `prism_core::Discovery` the single-user borrowed engine.

pub use prism_bayes as bayes;
pub use prism_core as core;
pub use prism_datasets as datasets;
pub use prism_db as db;
pub use prism_lang as lang;

pub use prism_core::{DiscoveryService, Error, SessionHandle};
