//! # prism — multiresolution schema mapping (facade crate)
//!
//! Re-exports the full public API of the Prism reproduction. See the README
//! for a tour and `prism_core::Discovery` for the main entry point.

pub use prism_bayes as bayes;
pub use prism_core as core;
pub use prism_datasets as datasets;
pub use prism_db as db;
pub use prism_lang as lang;
