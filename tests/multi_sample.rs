//! Multiple sample-constraint rows: the paper's Configuration section lets
//! the user set "number of sample constraints"; a satisfying query must
//! contain EVERY sample row in its result. These tests exercise the
//! cross-sample intersection logic end-to-end, plus the demo's iterative
//! refinement loop (step 4.4: "repeat the above process").

use prism::core::session::{Session, SessionConfig};
use prism::core::{Discovery, DiscoveryConfig, TargetConstraints};
use prism::datasets::mondial;
use prism::lang::matches_value;

#[test]
fn two_sample_rows_intersect_candidates() {
    let db = mondial(42, 1);
    let engine = Discovery::new(&db, DiscoveryConfig::default());
    // Two lakes with their states: both rows must appear in the result.
    let tc = TargetConstraints::parse(
        2,
        &[
            vec![Some("Lake Tahoe".into()), Some("California".into())],
            vec![Some("Crater Lake".into()), Some("Oregon".into())],
        ],
        &[],
    )
    .unwrap();
    let result = engine.run(&tc);
    assert!(!result.queries.is_empty());
    for q in &result.queries {
        let rows = q.candidate.query.execute(&db, 200_000).unwrap();
        for sample in &tc.samples {
            let witness = rows.iter().any(|row| {
                row.iter()
                    .zip(sample.cells())
                    .all(|(v, c)| c.as_ref().map(|c| matches_value(c, v)).unwrap_or(true))
            });
            assert!(witness, "{} misses a sample row", q.sql);
        }
    }
}

#[test]
fn contradictory_second_sample_prunes_everything() {
    let db = mondial(42, 1);
    let engine = Discovery::new(&db, DiscoveryConfig::default());
    // Row 1 is satisfiable; row 2 pairs a lake with the wrong state, so no
    // single query can contain both (for the lake/state interpretation) —
    // and no other column pair holds both combinations either.
    let tc = TargetConstraints::parse(
        2,
        &[
            vec![Some("Lake Tahoe".into()), Some("California".into())],
            vec![Some("Crater Lake".into()), Some("Nevada".into())],
        ],
        &[],
    )
    .unwrap();
    let result = engine.run(&tc);
    for q in &result.queries {
        // Any survivor must genuinely satisfy both rows.
        let rows = q.candidate.query.execute(&db, 200_000).unwrap();
        for sample in &tc.samples {
            assert!(rows.iter().any(|row| row
                .iter()
                .zip(sample.cells())
                .all(|(v, c)| c.as_ref().map(|c| matches_value(c, v)).unwrap_or(true))));
        }
    }
}

#[test]
fn fewer_samples_never_yield_fewer_queries() {
    // Adding a sample row can only constrain further (monotonicity).
    let db = mondial(42, 1);
    let engine = Discovery::new(
        &db,
        DiscoveryConfig {
            result_limit: 100_000,
            ..DiscoveryConfig::default()
        },
    );
    let one = TargetConstraints::parse(
        2,
        &[vec![Some("Lake Tahoe".into()), Some("California".into())]],
        &[],
    )
    .unwrap();
    let two = TargetConstraints::parse(
        2,
        &[
            vec![Some("Lake Tahoe".into()), Some("California".into())],
            vec![Some("Crater Lake".into()), Some("Oregon".into())],
        ],
        &[],
    )
    .unwrap();
    let keys_one: Vec<String> = engine
        .run(&one)
        .queries
        .into_iter()
        .map(|q| q.key)
        .collect();
    let keys_two: Vec<String> = engine
        .run(&two)
        .queries
        .into_iter()
        .map(|q| q.key)
        .collect();
    assert!(keys_two.len() <= keys_one.len());
    for k in &keys_two {
        assert!(
            keys_one.contains(k),
            "two-sample result {k} absent from one-sample set"
        );
    }
}

#[test]
fn session_supports_iterative_refinement() {
    // Demo step 4.4: the user inspects results, tightens the description,
    // and searches again within the same session.
    let db = mondial(42, 1);
    let mut session = Session::new(
        &db,
        SessionConfig {
            target_columns: 2,
            sample_rows: 1,
            with_metadata: true,
            discovery: DiscoveryConfig {
                result_limit: 100_000,
                ..DiscoveryConfig::default()
            },
        },
    );
    session.set_sample_cell(0, 0, "Lake Tahoe").unwrap();
    let broad = session.start_searching().unwrap().queries.len();
    assert!(broad > 0);
    // Refine: the second column must be a non-negative decimal.
    session
        .set_metadata_cell(1, "DataType=='decimal' AND MinValue>='0'")
        .unwrap();
    let refined = session.start_searching().unwrap().queries.len();
    assert!(refined > 0);
    assert!(
        refined <= broad,
        "refinement must narrow the result list ({refined} > {broad})"
    );
    // The refined result view replaces the old one.
    let sql = session.result_sql(0).unwrap().to_string();
    let graph = session.explain_result(0, None).unwrap();
    assert!(!sql.is_empty());
    assert!(!graph.relations.is_empty());
}
