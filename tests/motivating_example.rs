//! End-to-end reproduction of the paper's motivating example (Table 1,
//! Sections 1 and 3) through the public facade crate.

use prism::core::explain::{all_picks, explain};
use prism::core::{Discovery, DiscoveryConfig, SchedulerKind, TargetConstraints};
use prism::datasets::mondial;
use prism::db::Value;

fn walkthrough_constraints() -> TargetConstraints {
    TargetConstraints::parse(
        3,
        &[vec![
            Some("California || Nevada".to_string()),
            Some("Lake Tahoe".to_string()),
            None,
        ]],
        &[
            None,
            None,
            Some("DataType=='decimal' AND MinValue>='0'".to_string()),
        ],
    )
    .unwrap()
}

const DESIRED_SQL: &str = "SELECT geo_lake.Province, Lake.Name, Lake.Area \
                           FROM Lake, geo_lake WHERE geo_lake.Lake = Lake.Name";

#[test]
fn the_desired_query_is_discovered() {
    let db = mondial(42, 1);
    let engine = Discovery::new(&db, DiscoveryConfig::default());
    let result = engine.run(&walkthrough_constraints());
    assert!(!result.timed_out);
    assert!(
        result.queries.iter().any(|q| q.sql == DESIRED_SQL),
        "missing desired query among {:?}",
        result.queries.iter().map(|q| &q.sql).collect::<Vec<_>>()
    );
}

#[test]
fn table_1_rows_are_reproduced() {
    let db = mondial(42, 1);
    let engine = Discovery::new(&db, DiscoveryConfig::default());
    let result = engine.run(&walkthrough_constraints());
    let hit = result
        .queries
        .iter()
        .find(|q| q.sql == DESIRED_SQL)
        .unwrap();
    let rows = hit.candidate.query.execute(&db, 10_000).unwrap();
    for (state, lake, area) in [
        ("California", "Lake Tahoe", 497.0),
        ("Oregon", "Crater Lake", 53.2),
        ("Florida", "Fort Peck Lake", 981.0),
    ] {
        assert!(
            rows.iter().any(|r| r[0] == Value::text(state)
                && r[1] == Value::text(lake)
                && r[2] == Value::Decimal(area)),
            "Table 1 row ({state}, {lake}, {area}) missing"
        );
    }
}

#[test]
fn every_returned_query_satisfies_all_constraints() {
    let db = mondial(42, 1);
    let tc = walkthrough_constraints();
    let engine = Discovery::new(&db, DiscoveryConfig::default());
    let result = engine.run(&tc);
    assert!(!result.queries.is_empty());
    for q in &result.queries {
        // Sample constraint: some result row matches all constrained cells.
        let rows = q.candidate.query.execute(&db, 200_000).unwrap();
        let witness = rows.iter().any(|row| {
            tc.samples[0]
                .cells()
                .iter()
                .enumerate()
                .all(|(i, c)| match c {
                    Some(c) => prism::lang::matches_value(c, &row[i]),
                    None => true,
                })
        });
        assert!(witness, "{} lacks a witness row", q.sql);
        // Metadata constraint: the assigned column's statistics satisfy it.
        let col = q.candidate.assignment[2];
        let def = db.catalog().column_def(col);
        assert!(
            prism::lang::metadata_satisfied(
                tc.metadata[2].as_ref().unwrap(),
                &def.name,
                db.stats().column(col)
            ),
            "{} column 2 violates metadata",
            q.sql
        );
    }
}

#[test]
fn the_returned_set_is_complete_wrt_naive_validation() {
    // Every candidate accepted by exhaustive naive validation must also be
    // accepted by the scheduled run — filter scheduling is an optimization,
    // not an approximation.
    let db = mondial(42, 1);
    let tc = walkthrough_constraints();
    let fast = Discovery::new(&db, DiscoveryConfig::with_scheduler(SchedulerKind::Bayes));
    let slow = Discovery::new(&db, DiscoveryConfig::with_scheduler(SchedulerKind::Naive));
    let mut a: Vec<String> = fast.run(&tc).queries.into_iter().map(|q| q.key).collect();
    let mut b: Vec<String> = slow.run(&tc).queries.into_iter().map(|q| q.key).collect();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn explanation_graph_of_the_desired_query_matches_figure_4c() {
    let db = mondial(42, 1);
    let tc = walkthrough_constraints();
    let engine = Discovery::new(&db, DiscoveryConfig::default());
    let result = engine.run(&tc);
    let hit = result
        .queries
        .iter()
        .find(|q| q.sql == DESIRED_SQL)
        .unwrap();
    let g = explain(&db, &hit.candidate, &tc, &all_picks(&tc));
    assert_eq!(g.relations.len(), 2, "orange squares");
    assert_eq!(g.attributes.len(), 3, "green ellipses");
    assert_eq!(g.joins.len(), 1, "join edge");
    assert_eq!(g.constraints.len(), 3, "blue constraint boxes");
    let dot = g.to_dot();
    assert!(dot.contains("orange") && dot.contains("palegreen") && dot.contains("lightblue"));
}

#[test]
fn discovery_stays_well_inside_the_interactive_budget() {
    let db = mondial(42, 1);
    let engine = Discovery::new(&db, DiscoveryConfig::default());
    let result = engine.run(&walkthrough_constraints());
    // The paper's demo budget is 60 s; synthetic Mondial at scale 1 should
    // resolve in a tiny fraction of that even on slow machines.
    assert!(result.stats.elapsed.as_secs() < 30);
    assert!(!result.timed_out);
}
