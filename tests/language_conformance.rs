//! Figure 1 conformance: the multiresolution schema mapping language,
//! exercised through the public facade, plus property-based parser tests.

use prism::db::Value;
use prism::lang::{
    matches_value, parse_metadata_constraint, parse_value_constraint, CmpOp, ConstraintExpr,
};
use proptest::prelude::*;

/// Every production of Figure 1 has a concrete spelling that must parse.
#[test]
fn figure_1_productions_parse() {
    // ck := pv
    parse_value_constraint("Lake Tahoe").unwrap();
    // ck := pv logicalop pv (∨)
    parse_value_constraint("California || Nevada").unwrap();
    parse_value_constraint("California OR Nevada").unwrap();
    // ck := pv logicalop pv (∧) — value range
    parse_value_constraint(">= 100 && <= 600").unwrap();
    parse_value_constraint(">= 100 AND <= 600").unwrap();
    // pv := binop const, all six binops
    for op in ["<", "<=", ">", ">=", "=", "!="] {
        parse_value_constraint(&format!("{op} 42")).unwrap();
    }
    // Unicode spellings of the grammar's symbols.
    parse_value_constraint("\u{2265} 100 \u{2227} \u{2264} 600").unwrap();
    parse_value_constraint("\u{2260} 'x'").unwrap();
    // cm := pm | pm logicalop pm, all four metadata types of Figure 1.
    parse_metadata_constraint("DataType == 'decimal'").unwrap();
    parse_metadata_constraint("ColumnName != 'id'").unwrap();
    parse_metadata_constraint("MaxValue <= '100'").unwrap();
    parse_metadata_constraint("MinValue >= '0'").unwrap();
    parse_metadata_constraint("DataType=='int' OR DataType=='decimal'").unwrap();
    // The paper's "maximum text length" metadata.
    parse_metadata_constraint("MaxLength <= '32'").unwrap();
}

#[test]
fn the_demo_walkthrough_strings_parse_verbatim() {
    parse_value_constraint("California || Nevada").unwrap();
    parse_value_constraint("Lake Tahoe").unwrap();
    // As typed in the paper (with `==` and quoted '0').
    parse_metadata_constraint("DataType==\u{2018}decimal\u{2019} AND MinValue>=\u{2018}0\u{2019}")
        .unwrap();
}

// ---- property-based tests ----

/// Generate random value-constraint ASTs and check Display → parse is an
/// identity (round-trip property).
fn arb_literal() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-zA-Z][a-zA-Z0-9 ]{0,12}".prop_map(|s| s.trim().to_string()),
        (-10_000i64..10_000).prop_map(|n| n.to_string()),
        (0u32..100_000, 1u32..100).prop_map(|(a, b)| format!("{}.{}", a, b)),
    ]
    .prop_filter("non-empty", |s| !s.trim().is_empty())
}

fn arb_value_constraint() -> impl Strategy<Value = prism::lang::ValueConstraint> {
    let leaf = (
        prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Ne),
            Just(CmpOp::Lt),
            Just(CmpOp::Le),
            Just(CmpOp::Gt),
            Just(CmpOp::Ge),
            Just(CmpOp::Contains),
        ],
        arb_literal(),
    )
        .prop_map(|(op, raw)| {
            ConstraintExpr::Pred(prism::lang::ValuePred {
                op,
                lit: prism::lang::Literal::new(raw),
            })
        });
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ConstraintExpr::and(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| ConstraintExpr::or(a, b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_then_parse_is_identity(c in arb_value_constraint()) {
        let rendered = c.to_string();
        let reparsed = parse_value_constraint(&rendered)
            .unwrap_or_else(|e| panic!("rendered `{rendered}` failed to parse: {e}"));
        prop_assert_eq!(c, reparsed);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,64}") {
        let _ = parse_value_constraint(&s);
        let _ = parse_metadata_constraint(&s);
    }

    #[test]
    fn evaluation_is_deterministic(c in arb_value_constraint(), n in -1000i64..1000) {
        let v = Value::Int(n);
        prop_assert_eq!(matches_value(&c, &v), matches_value(&c, &v));
    }

    #[test]
    fn disjunction_is_monotone(c in arb_value_constraint(), n in -1000i64..1000) {
        // v matches c ⟹ v matches (c OR anything).
        let v = Value::Int(n);
        let widened = ConstraintExpr::or(
            c.clone(),
            ConstraintExpr::Pred(prism::lang::ValuePred {
                op: CmpOp::Eq,
                lit: prism::lang::Literal::new("zzz-never"),
            }),
        );
        if matches_value(&c, &v) {
            prop_assert!(matches_value(&widened, &v));
        }
    }

    #[test]
    fn conjunction_is_restrictive(c in arb_value_constraint(), n in -1000i64..1000) {
        // v matches (c AND x) ⟹ v matches c.
        let v = Value::Int(n);
        let narrowed = ConstraintExpr::and(
            c.clone(),
            ConstraintExpr::Pred(prism::lang::ValuePred {
                op: CmpOp::Ge,
                lit: prism::lang::Literal::new("-999999"),
            }),
        );
        if matches_value(&narrowed, &v) {
            prop_assert!(matches_value(&c, &v));
        }
    }

    #[test]
    fn nulls_never_match(c in arb_value_constraint()) {
        prop_assert!(!matches_value(&c, &Value::Null));
    }
}
