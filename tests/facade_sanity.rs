//! Workspace-level sanity: every `prism::*` facade re-export resolves and
//! the three layers compose — parse a constraint via `prism::lang`, load a
//! toy table via `prism::db`, run one discovery round via `prism::core`.
//! This is the canary that catches facade/workspace wiring regressions
//! before the heavier end-to-end suites run.

use prism::bayes::{BayesEstimator, TrainConfig};
use prism::core::{Discovery, DiscoveryConfig, TargetConstraints};
use prism::db::{ColumnDef, DataType, DatabaseBuilder, Value};
use prism::lang::{matches_value, parse_metadata_constraint, parse_value_constraint};

fn toy_db() -> prism::db::Database {
    let mut b = DatabaseBuilder::new("sanity");
    b.add_table(
        "Lake",
        vec![
            ColumnDef::new("Name", DataType::Text).not_null(),
            ColumnDef::new("Area", DataType::Decimal),
        ],
    )
    .unwrap();
    b.add_rows(
        "Lake",
        vec![
            vec!["Lake Tahoe".into(), Value::Decimal(497.0)],
            vec!["Crater Lake".into(), Value::Decimal(53.2)],
        ],
    )
    .unwrap();
    b.build()
}

#[test]
fn lang_parses_through_the_facade() {
    let c = parse_value_constraint("California || Nevada").unwrap();
    assert!(matches_value(&c, &Value::text("Nevada")));
    assert!(!matches_value(&c, &Value::text("Oregon")));
    parse_metadata_constraint("DataType=='decimal' AND MinValue>='0'").unwrap();
}

#[test]
fn db_builds_and_indexes_through_the_facade() {
    let db = toy_db();
    assert_eq!(db.catalog().table_count(), 1);
    assert_eq!(db.total_rows(), 2);
    // The inverted index answers keyword probes after preprocessing.
    assert!(!db.index().lookup_cell("lake tahoe").is_empty());
}

#[test]
fn core_discovers_on_a_toy_database_through_the_facade() {
    let db = toy_db();
    let constraints = TargetConstraints::parse(
        2,
        &[vec![Some("Lake Tahoe".to_string()), None]],
        &[None, Some("DataType=='decimal'".to_string())],
    )
    .unwrap();
    let engine = Discovery::new(&db, DiscoveryConfig::default());
    let result = engine.run(&constraints);
    assert!(!result.timed_out);
    assert!(
        !result.queries.is_empty(),
        "discovery found nothing on the toy database"
    );
    let rows = result.queries[0].candidate.query.execute(&db, 100).unwrap();
    assert!(rows.iter().any(|r| r[0] == Value::text("Lake Tahoe")));
}

#[test]
fn bayes_and_datasets_resolve_through_the_facade() {
    // `prism::datasets` builds the paper's synthetic databases and
    // `prism::bayes` trains on them — one round-trip proves both exports.
    let db = prism::datasets::nba(7, 1);
    let est = BayesEstimator::train(&db, &TrainConfig::default());
    assert!(est.has_join_indicators());
}
