//! Property-based tests of the discovery engine's core guarantees, driven
//! by randomized constraints over synthetic Mondial.

use prism::core::{Discovery, DiscoveryConfig, TargetConstraints};
use prism::datasets::mondial;
use prism::db::Database;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Shared database + engine: building them once keeps the 64-case proptest
/// runs fast.
fn db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| mondial(42, 1))
}

fn engine() -> &'static Discovery<'static> {
    static ENGINE: OnceLock<Discovery<'static>> = OnceLock::new();
    ENGINE.get_or_init(|| {
        Discovery::new(
            db(),
            DiscoveryConfig {
                result_limit: 100_000,
                ..DiscoveryConfig::default()
            },
        )
    })
}

/// Keywords that exist in Mondial plus ones that don't.
fn arb_keyword() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("Lake Tahoe".to_string()),
        Just("California".to_string()),
        Just("Nevada".to_string()),
        Just("Crater Lake".to_string()),
        Just("Mississippi".to_string()),
        Just("United States".to_string()),
        Just("Everest".to_string()),
        Just("Nonexistent Keyword".to_string()),
        "[A-Z][a-z]{2,8}".prop_map(|s| s),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness: every query returned for a single-keyword task really
    /// contains the keyword in the projected column.
    #[test]
    fn returned_queries_always_satisfy_a_keyword_constraint(kw in arb_keyword()) {
        let Ok(tc) = TargetConstraints::parse(
            1,
            &[vec![Some(kw.clone())]],
            &[],
        ) else { return Ok(()); };
        let result = engine().run(&tc);
        for q in &result.queries {
            let rows = q.candidate.query.execute(db(), 500_000).unwrap();
            let c = tc.samples[0].cell(0).unwrap();
            prop_assert!(
                rows.iter().any(|r| prism::lang::matches_value(c, &r[0])),
                "{} has no row matching `{kw}`", q.sql
            );
        }
    }

    /// Widening a keyword into a disjunction never loses queries.
    #[test]
    fn disjunction_widening_is_monotone(kw in arb_keyword()) {
        let Ok(tight) = TargetConstraints::parse(1, &[vec![Some(kw.clone())]], &[]) else {
            return Ok(());
        };
        let Ok(loose) = TargetConstraints::parse(
            1,
            &[vec![Some(format!("{kw} || Oregon"))]],
            &[],
        ) else { return Ok(()); };
        let tight_keys: Vec<String> =
            engine().run(&tight).queries.into_iter().map(|q| q.key).collect();
        let loose_keys: Vec<String> =
            engine().run(&loose).queries.into_iter().map(|q| q.key).collect();
        for k in &tight_keys {
            prop_assert!(
                loose_keys.contains(k),
                "query {k} lost when widening `{kw}` with a disjunct"
            );
        }
    }

    /// Discovery is deterministic.
    #[test]
    fn discovery_is_deterministic(kw in arb_keyword()) {
        let Ok(tc) = TargetConstraints::parse(1, &[vec![Some(kw)]], &[]) else {
            return Ok(());
        };
        let a: Vec<String> = engine().run(&tc).queries.into_iter().map(|q| q.key).collect();
        let b: Vec<String> = engine().run(&tc).queries.into_iter().map(|q| q.key).collect();
        prop_assert_eq!(a, b);
    }

    /// Adding a numeric range column never panics and never times out on
    /// the synthetic database, whatever the bounds.
    #[test]
    fn range_constraints_are_robust(lo in -1000i64..1_000_000, width in 0i64..100_000) {
        let tc = TargetConstraints::parse(
            2,
            &[vec![
                Some("Lake Tahoe".to_string()),
                Some(format!(">= {lo} && <= {}", lo + width)),
            ]],
            &[],
        ).unwrap();
        let result = engine().run(&tc);
        prop_assert!(!result.timed_out);
        // Soundness of the numeric column.
        for q in &result.queries {
            let rows = q.candidate.query.execute(db(), 500_000).unwrap();
            let c = tc.samples[0].cell(1).unwrap();
            prop_assert!(rows.iter().any(|r| prism::lang::matches_value(c, &r[1])));
        }
    }
}
