//! The paper's announced future-work extension: user-defined functions as
//! constraints ("we plan to support more metadata constraints, and even
//! user-defined functions" — Section 2.1). End-to-end through the facade.

use prism::core::session::{Session, SessionConfig};
use prism::core::{Discovery, DiscoveryConfig, TargetConstraints};
use prism::datasets::mondial;
use prism::db::{DataType, Value};
use prism::lang::UdfRegistry;

fn registry() -> UdfRegistry {
    let mut udfs = UdfRegistry::new();
    // Value UDF: "this cell looks like a US-style state name" — something no
    // built-in predicate can express.
    udfs.register_value("two_word_name", |v: &Value| {
        v.as_text()
            .is_some_and(|s| s.split_whitespace().count() == 2)
    });
    // Value UDF over numbers.
    udfs.register_value("positive", |v: &Value| {
        v.as_number().is_some_and(|x| x > 0.0)
    });
    // Column UDF: a plausible "surface area" column — decimal-typed, wide
    // dynamic range, no negatives.
    udfs.register_column("looks_like_area", |s| {
        s.dtype == DataType::Decimal
            && s.min_num.is_some_and(|m| m >= 0.0)
            && s.max_num.is_some_and(|m| m > 100.0)
    });
    udfs
}

#[test]
fn value_udf_constrains_cells() {
    let db = mondial(42, 1);
    let tc = TargetConstraints::parse(
        2,
        &[vec![
            Some("Lake Tahoe".to_string()),
            Some("@two_word_name".to_string()),
        ]],
        &[],
    )
    .unwrap()
    .with_udfs(registry());
    assert!(tc.missing_udfs().is_empty());
    let engine = Discovery::new(&db, DiscoveryConfig::default());
    let result = engine.run(&tc);
    assert!(!result.queries.is_empty());
    // Soundness: some result row's column-1 cell has exactly two words.
    for q in &result.queries {
        let rows = q.candidate.query.execute(&db, 200_000).unwrap();
        assert!(
            rows.iter().any(|r| r[1]
                .as_text()
                .is_some_and(|s| s.split_whitespace().count() == 2)),
            "{} has no two-word witness",
            q.sql
        );
    }
}

#[test]
fn column_udf_acts_as_metadata() {
    let db = mondial(42, 1);
    let tc = TargetConstraints::parse(
        2,
        &[vec![Some("Lake Tahoe".to_string()), None]],
        &[None, Some("@looks_like_area".to_string())],
    )
    .unwrap()
    .with_udfs(registry());
    let engine = Discovery::new(&db, DiscoveryConfig::default());
    let result = engine.run(&tc);
    assert!(!result.queries.is_empty());
    // Every accepted assignment's column 1 satisfies the column UDF.
    for q in &result.queries {
        let col = q.candidate.assignment[1];
        let stats = db.stats().column(col);
        assert_eq!(stats.dtype, DataType::Decimal, "{}", q.sql);
        assert!(stats.min_num.unwrap() >= 0.0);
    }
}

#[test]
fn udfs_combine_with_builtin_predicates() {
    let db = mondial(42, 1);
    // area >= 100 AND positive — conjunction of builtin + UDF.
    let tc = TargetConstraints::parse(
        2,
        &[vec![
            Some("Lake Tahoe".to_string()),
            Some(">= 100 && @positive".to_string()),
        ]],
        &[],
    )
    .unwrap()
    .with_udfs(registry());
    let engine = Discovery::new(&db, DiscoveryConfig::default());
    let result = engine.run(&tc);
    assert!(!result.queries.is_empty());
}

#[test]
fn unregistered_udf_matches_nothing() {
    let db = mondial(42, 1);
    let tc = TargetConstraints::parse(1, &[vec![Some("@ghost".to_string())]], &[]).unwrap(); // no registry attached
    assert_eq!(tc.missing_udfs(), vec!["@ghost (value)"]);
    let engine = Discovery::new(&db, DiscoveryConfig::default());
    let result = engine.run(&tc);
    assert!(result.queries.is_empty(), "unknown UDFs are conservative");
}

#[test]
fn session_rejects_unknown_udfs_with_a_clear_error() {
    let db = mondial(42, 1);
    let mut session = Session::new(&db, SessionConfig::default());
    session.set_sample_cell(0, 0, "@phantom").unwrap();
    let err = session.start_searching().unwrap_err();
    assert!(err.to_string().contains("phantom"), "{err}");
    // After registering, the search runs.
    let mut udfs = UdfRegistry::new();
    udfs.register_value("phantom", |v: &Value| {
        v.as_text().is_some_and(|s| s == "Lake Tahoe")
    });
    session.set_udfs(udfs);
    let n = session.start_searching().unwrap().queries.len();
    assert!(n > 0);
}

#[test]
fn udf_constraints_render_and_reparse() {
    let c = prism::lang::parse_value_constraint("@positive || Lake Tahoe").unwrap();
    let rendered = c.to_string();
    assert!(rendered.contains("@positive"));
    let reparsed = prism::lang::parse_value_constraint(&rendered).unwrap();
    assert_eq!(c, reparsed);
    let m =
        prism::lang::parse_metadata_constraint("@looks_like_area AND DataType=='decimal'").unwrap();
    let reparsed = prism::lang::parse_metadata_constraint(&m.to_string()).unwrap();
    assert_eq!(m, reparsed);
}
