//! Cross-database pipeline tests: synthesized tasks at every resolution on
//! all three demo databases must rediscover their ground-truth queries
//! (Figure 2's architecture, end to end).

use prism::core::{Discovery, DiscoveryConfig, TargetConstraints};
use prism::datasets::{imdb, mondial, nba, Resolution, TaskGenConfig, TaskGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn engine_config() -> DiscoveryConfig {
    DiscoveryConfig {
        result_limit: 100_000,
        ..DiscoveryConfig::default()
    }
}

fn run_tasks(
    db: &prism::db::Database,
    resolution: Resolution,
    n: usize,
    seed: u64,
) -> (usize, usize) {
    let engine = Discovery::new(db, engine_config());
    let taskgen = TaskGenerator::new(db, TaskGenConfig::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let tasks = taskgen.generate_many(resolution, n, &mut rng);
    assert!(!tasks.is_empty(), "task generation failed on {}", db.name());
    let mut found = 0;
    for task in &tasks {
        let constraints =
            TargetConstraints::parse(task.column_count, &task.samples, &task.metadata).unwrap();
        let result = engine.run(&constraints);
        assert!(!result.timed_out, "timeout on {}", db.name());
        if result.queries.iter().any(|q| q.key == task.truth_key) {
            found += 1;
        }
    }
    (found, tasks.len())
}

#[test]
fn mondial_exact_tasks_rediscover_ground_truth() {
    let db = mondial(42, 1);
    let (found, total) = run_tasks(&db, Resolution::Exact, 6, 1);
    assert_eq!(found, total, "exact constraints must always find the truth");
}

#[test]
fn mondial_loose_tasks_still_find_ground_truth() {
    let db = mondial(42, 1);
    for resolution in [
        Resolution::Disjunction,
        Resolution::Range,
        Resolution::Metadata,
    ] {
        let (found, total) = run_tasks(&db, resolution, 5, 2);
        assert_eq!(
            found, total,
            "{resolution:?}: loosening constraints must not lose the truth \
             (the true query still satisfies looser constraints)"
        );
    }
}

#[test]
fn imdb_tasks_rediscover_ground_truth() {
    let db = imdb(42, 1);
    for resolution in [Resolution::Exact, Resolution::Range] {
        let (found, total) = run_tasks(&db, resolution, 5, 3);
        assert_eq!(found, total, "{resolution:?} on IMDB");
    }
}

#[test]
fn nba_tasks_rediscover_ground_truth() {
    let db = nba(42, 1);
    for resolution in [Resolution::Exact, Resolution::Disjunction] {
        let (found, total) = run_tasks(&db, resolution, 5, 4);
        assert_eq!(found, total, "{resolution:?} on NBA");
    }
}

#[test]
fn missing_cells_never_lose_the_truth_only_add_noise() {
    let db = mondial(42, 1);
    let engine = Discovery::new(&db, engine_config());
    let taskgen = TaskGenerator::new(
        &db,
        TaskGenConfig {
            min_columns: 3,
            max_columns: 3,
            missing_cells: 1,
            ..TaskGenConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(5);
    let tasks = taskgen.generate_many(Resolution::Missing, 4, &mut rng);
    for task in &tasks {
        let constraints =
            TargetConstraints::parse(task.column_count, &task.samples, &task.metadata).unwrap();
        let result = engine.run(&constraints);
        assert!(
            result.queries.iter().any(|q| q.key == task.truth_key),
            "truth lost with one missing cell: {}",
            task.truth_sql
        );
    }
}

#[test]
fn preprocessing_artifacts_agree_across_databases() {
    // Sanity of the substrate stack for all three generators: index, stats,
    // graph, and join indexes must be mutually consistent.
    for db in [mondial(7, 1), imdb(7, 1), nba(7, 1)] {
        for (tid, schema) in db.catalog().tables() {
            let table = db.table(tid);
            for (ci, _def) in schema.columns.iter().enumerate() {
                let col = prism::db::ColumnRef::new(tid, ci as u32);
                let stats = db.stats().column(col);
                assert_eq!(stats.row_count as usize, table.row_count());
                // MCV counts can never exceed non-null rows.
                let mcv_mass: u32 = stats.most_common.iter().map(|(_, c)| *c).sum();
                assert!(mcv_mass <= stats.non_null_count());
            }
        }
        // Every graph edge's endpoints carry join indexes.
        for e in 0..db.graph().edge_count() {
            let edge = db.graph().edge(prism::db::EdgeId(e as u32));
            assert!(db.join_index(edge.a).is_some());
            assert!(db.join_index(edge.b).is_some());
        }
    }
}
