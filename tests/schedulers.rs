//! Scheduler soundness and efficiency invariants across synthesized tasks —
//! the correctness backbone behind the E3 experiment.

use prism::bayes::{BayesEstimator, TrainConfig};
use prism::core::candidates::enumerate_candidates;
use prism::core::filters::build_filters;
use prism::core::filters::FilterSet;
use prism::core::related::find_related;
use prism::core::scheduler::{
    ground_truth_outcomes, oracle_schedule, BayesModel, Engine, FailureModel, PathLengthModel,
    SchedCtx, ScheduleOutcome, Scheduler,
};
use prism::core::{DiscoveryConfig, TargetConstraints};
use prism::datasets::{mondial, nba, Resolution, TaskGenConfig, TaskGenerator};
use prism::db::Database;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_greedy(
    db: &Database,
    constraints: &TargetConstraints,
    fs: &FilterSet,
    model: &dyn FailureModel,
    deadline: Option<std::time::Instant>,
) -> ScheduleOutcome {
    let ctx = SchedCtx::new(db, constraints, fs).with_deadline(deadline);
    Scheduler::run(&ctx, Engine::Greedy { model, threads: 1 })
}

fn run_naive(
    db: &Database,
    constraints: &TargetConstraints,
    fs: &FilterSet,
    deadline: Option<std::time::Instant>,
) -> ScheduleOutcome {
    let ctx = SchedCtx::new(db, constraints, fs).with_deadline(deadline);
    Scheduler::run(&ctx, Engine::Naive)
}

struct Prepared {
    db: prism::db::Database,
    cases: Vec<(TargetConstraints, prism::core::filters::FilterSet)>,
}

fn prepare(db: prism::db::Database, resolution: Resolution, n: usize, seed: u64) -> Prepared {
    let config = DiscoveryConfig::default();
    let taskgen = TaskGenerator::new(&db, TaskGenConfig::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let tasks = taskgen.generate_many(resolution, n, &mut rng);
    let mut cases = Vec::new();
    for task in &tasks {
        let constraints =
            TargetConstraints::parse(task.column_count, &task.samples, &task.metadata).unwrap();
        let related = find_related(&db, &constraints, &config);
        let cands = enumerate_candidates(&db, &related, &config, None).candidates;
        if cands.is_empty() {
            continue;
        }
        let fs = build_filters(&db, &cands, &constraints, None);
        cases.push((constraints, fs));
    }
    assert!(!cases.is_empty());
    Prepared { db, cases }
}

#[test]
fn schedulers_agree_with_ground_truth_on_every_task() {
    let p = prepare(mondial(42, 1), Resolution::Disjunction, 6, 11);
    let est = BayesEstimator::train(&p.db, &TrainConfig::default());
    for (constraints, fs) in &p.cases {
        // Ground truth: candidates whose every top filter truly succeeds.
        let outcomes = ground_truth_outcomes(&p.db, constraints, fs);
        let truth: Vec<u32> = (0..fs.per_candidate.len() as u32)
            .filter(|&c| fs.tops[c as usize].iter().all(|t| outcomes[t.index()]))
            .collect();
        let naive = run_naive(&p.db, constraints, fs, None);
        let path = run_greedy(&p.db, constraints, fs, &PathLengthModel, None);
        let bayes = run_greedy(
            &p.db,
            constraints,
            fs,
            &BayesModel::new(&est, constraints),
            None,
        );
        assert_eq!(naive.accepted, truth, "naive diverges from ground truth");
        assert_eq!(path.accepted, truth, "path-length diverges");
        assert_eq!(bayes.accepted, truth, "bayes diverges");
    }
}

#[test]
fn oracle_never_exceeds_any_scheduler() {
    let p = prepare(mondial(42, 1), Resolution::Range, 5, 23);
    let est = BayesEstimator::train(&p.db, &TrainConfig::default());
    for (constraints, fs) in &p.cases {
        let (oracle, _) = oracle_schedule(&p.db, constraints, fs);
        for validations in [
            run_naive(&p.db, constraints, fs, None).validations,
            run_greedy(&p.db, constraints, fs, &PathLengthModel, None).validations,
            run_greedy(
                &p.db,
                constraints,
                fs,
                &BayesModel::new(&est, constraints),
                None,
            )
            .validations,
        ] {
            assert!(
                oracle <= validations,
                "oracle {oracle} > scheduler {validations}"
            );
        }
    }
}

#[test]
fn decomposition_beats_naive_on_execution_work() {
    // Naive whole-query validation pays full join scans on failing
    // candidates (no witness row means scanning the entire result space);
    // filter decomposition kills those candidates with cheap sub-queries.
    // The win is in execution WORK — validation *counts* can even favour
    // naive on success-heavy workloads, since acceptance requires one top
    // validation per candidate no matter what (see E3 for the count metric,
    // which compares against the optimum, not naive). A 12-task batch keeps
    // the aggregate well clear of per-task noise: single 6-task batches can
    // land on a statistical tie depending on the RNG stream.
    let p = prepare(mondial(42, 1), Resolution::Disjunction, 12, 31);
    let est = BayesEstimator::train(&p.db, &TrainConfig::default());
    let mut naive_work = 0u64;
    let mut bayes_work = 0u64;
    for (constraints, fs) in &p.cases {
        naive_work += run_naive(&p.db, constraints, fs, None).exec.rows_examined;
        bayes_work += run_greedy(
            &p.db,
            constraints,
            fs,
            &BayesModel::new(&est, constraints),
            None,
        )
        .exec
        .rows_examined;
    }
    assert!(
        bayes_work < naive_work,
        "bayes work {bayes_work} >= naive work {naive_work} in aggregate"
    );
}

#[test]
fn bayes_closes_part_of_the_gap_in_aggregate() {
    // The paper's E3 claim in miniature: over a batch of tasks the Bayesian
    // scheduler should sit closer to the optimum than the path-length
    // baseline (aggregate, not per-task — individual tasks can tie).
    let p = prepare(nba(42, 1), Resolution::Disjunction, 6, 37);
    let est = BayesEstimator::train(&p.db, &TrainConfig::default());
    let mut gap_path = 0i64;
    let mut gap_bayes = 0i64;
    for (constraints, fs) in &p.cases {
        let (oracle, _) = oracle_schedule(&p.db, constraints, fs);
        let path = run_greedy(&p.db, constraints, fs, &PathLengthModel, None).validations;
        let bayes = run_greedy(
            &p.db,
            constraints,
            fs,
            &BayesModel::new(&est, constraints),
            None,
        )
        .validations;
        gap_path += path as i64 - oracle as i64;
        gap_bayes += bayes as i64 - oracle as i64;
    }
    assert!(
        gap_bayes <= gap_path,
        "bayes gap {gap_bayes} should not exceed baseline gap {gap_path}"
    );
}

#[test]
fn validation_counts_are_bounded_by_filter_count() {
    let p = prepare(mondial(42, 1), Resolution::Exact, 5, 41);
    for (constraints, fs) in &p.cases {
        let outcome = run_greedy(&p.db, constraints, fs, &PathLengthModel, None);
        assert!(outcome.validations <= fs.len() as u64);
        let resolved = outcome.validations + outcome.implied_successes + outcome.implied_failures;
        assert!(resolved <= fs.len() as u64);
    }
}
