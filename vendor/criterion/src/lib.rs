//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, implementing the API subset this workspace's benches
//! use: [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`/`measurement_time`/`bench_function`/`bench_with_input`/
//! `finish`, [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! The build environment has no access to crates.io (see
//! `vendor/README.md`). Instead of criterion's statistical engine, each
//! benchmark runs its routine for up to `sample_size` samples or until the
//! measurement-time cap elapses and reports min/mean/max per-iteration
//! wall-clock time to stdout. Good enough for compile coverage and coarse
//! regression spotting; not a replacement for real criterion runs.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark routine; `iter` runs and times the closure.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up iteration.
        black_box(routine());
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

#[derive(Clone, Debug)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(5),
        }
    }
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(prefix: &str, id: &str, settings: &Settings, mut f: F) {
    let mut samples = Vec::new();
    let mut bencher = Bencher {
        samples: &mut samples,
        sample_size: settings.sample_size,
        measurement_time: settings.measurement_time,
    };
    f(&mut bencher);
    let name = if prefix.is_empty() {
        id.to_string()
    } else {
        format!("{prefix}/{id}")
    };
    if samples.is_empty() {
        println!("bench {name:<50} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "bench {name:<50} {:>12?}/iter (min {min:?}, max {max:?}, {} samples)",
        mean,
        samples.len()
    );
}

/// The top-level harness handle passed to every benchmark function.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Display,
        f: F,
    ) -> &mut Self {
        run_one("", &id.to_string(), &self.settings, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            settings: Settings::default(),
        }
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Display,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.to_string(), &self.settings, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        run_one(&self.name, &id.to_string(), &self.settings, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Collects benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `fn main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
