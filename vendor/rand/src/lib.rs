//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate,
//! implementing the 0.8-era API subset this workspace uses: [`Rng`] with
//! `gen_range`/`gen_bool`, [`SeedableRng`] with `seed_from_u64`/`from_seed`,
//! [`rngs::StdRng`], and [`seq::SliceRandom`] with `choose`/`shuffle`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the few dozen lines of the dependency surface it actually needs
//! (see `vendor/README.md`). The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic for a given seed, which is all the synthetic
//! dataset builders and property tests rely on. It is **not** the same
//! stream as upstream `StdRng`, and it is not cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of [0, 1]"
        );
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                lo + (hi - lo) * rng.next_f64() as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (not the upstream `StdRng`
    /// stream — see the crate docs).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point of xoshiro; redirect it.
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions: random element choice and Fisher–Yates shuffling.
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 60), b.gen_range(0u64..1 << 60));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_hits_members() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
