//! The [`Strategy`] trait and its combinators. Unlike upstream there is no
//! value tree / shrinking machinery: a strategy simply generates a value
//! from the deterministic [`TestRng`].

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Regenerate until `pred` accepts the value; gives up (panics) after a
    /// bounded number of rejections, like upstream's local-rejects limit.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            pred,
        }
    }

    /// Recursive strategies: `f` maps a strategy for the inner levels to a
    /// strategy for one level up; each level recurses with probability 1/2
    /// up to `depth` levels. `desired_size` and `expected_branch_size` are
    /// accepted for upstream signature compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            level = Union::new(vec![leaf.clone(), f(level).boxed()]).boxed();
        }
        level
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A reference-counted, clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive values",
            self.whence
        );
    }
}

/// Uniform choice among type-erased arms; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// `&'static str` as a regex-shaped string strategy (upstream's
/// `string_regex`): supports the subset documented in the crate docs.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

/// Strategy for `String` literals used directly (rare; mirrors `&str`).
impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}
