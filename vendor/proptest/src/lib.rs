//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing the generation-only subset this workspace uses:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_filter`, `prop_recursive`
//!   and `boxed`, implemented for numeric ranges, tuples of strategies, and
//!   `&'static str` regex patterns (a small regex subset: literals, `[...]`
//!   character classes, `\PC`, and `{n}`/`{m,n}`/`?`/`*`/`+` quantifiers);
//! * [`collection::vec`] with exact or ranged sizes;
//! * the [`proptest!`], [`prop_oneof!`], and `prop_assert*` macros and
//!   [`test_runner::ProptestConfig`].
//!
//! The build environment has no access to crates.io (see
//! `vendor/README.md`). Differences from upstream: inputs are generated from
//! a per-test deterministic seed (derived from the test's name), failures
//! are **not shrunk** — the panic message reports the case number so a
//! failure reproduces by rerunning the same test — and there is no
//! persistence of failing cases.

pub mod strategy;

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-`proptest!` block configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// A test-case failure raised by the `prop_assert*` macros.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The generation source handed to strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seed deterministically from the test's name so every run (and
        /// every failure report) replays the identical case sequence.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            Self(StdRng::seed_from_u64(seed))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: an exact size or a
    /// half-open range, as in upstream's `SizeRange`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` values with `size` elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

mod string;

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// One-of strategy choice: `prop_oneof![s1, s2, ...]` picks an arm uniformly
/// at random per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, $($fmt)+);
    }};
}

/// The test-defining macro. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` generated cases; the body
/// may `return Ok(())` early and use the `prop_assert*` macros.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {} of {} failed: {}",
                            case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}
