//! Generation from a small regex subset: literal characters, `[...]`
//! character classes (ranges and singletons, no negation), `\PC` (any
//! printable character), and the quantifiers `{n}`, `{m,n}`, `?`, `*`, `+`
//! (`*`/`+` capped at 8 repetitions). This covers every pattern the
//! workspace's property tests use.

use crate::test_runner::TestRng;
use rand::Rng;

/// Printable pool for `\PC`: full printable ASCII plus a few multi-byte
/// scalars so UTF-8 handling gets exercised.
const PRINTABLE_EXTRAS: &[char] = &['À', 'é', 'λ', 'Ω', '中', '\u{1F980}'];

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
    Printable,
}

impl Atom {
    fn generate(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Literal(c) => *c,
            Atom::Class(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                    .sum();
                let mut pick = rng.gen_range(0..total);
                for &(lo, hi) in ranges {
                    let span = hi as u32 - lo as u32 + 1;
                    if pick < span {
                        return char::from_u32(lo as u32 + pick)
                            .expect("class ranges stay inside valid scalars");
                    }
                    pick -= span;
                }
                unreachable!("pick bounded by total")
            }
            Atom::Printable => {
                // Mostly ASCII, occasionally a multi-byte scalar.
                if rng.gen_bool(0.9) {
                    char::from_u32(rng.gen_range(0x20u32..0x7F)).expect("printable ascii")
                } else {
                    PRINTABLE_EXTRAS[rng.gen_range(0..PRINTABLE_EXTRAS.len())]
                }
            }
        }
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Atom {
    let mut ranges = Vec::new();
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated character class in `{pattern}`"));
        if c == ']' {
            break;
        }
        if chars.peek() == Some(&'-') {
            let mut ahead = chars.clone();
            ahead.next();
            match ahead.peek() {
                Some(&']') | None => ranges.push((c, c)),
                Some(&hi) => {
                    assert!(c <= hi, "inverted range {c}-{hi} in `{pattern}`");
                    ranges.push((c, hi));
                    chars.next();
                    chars.next();
                }
            }
        } else {
            ranges.push((c, c));
        }
    }
    assert!(!ranges.is_empty(), "empty character class in `{pattern}`");
    Atom::Class(ranges)
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            let parse = |s: &str| {
                s.parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad quantifier `{{{spec}}}` in `{pattern}`"))
            };
            match spec.split_once(',') {
                Some((lo, hi)) => (parse(lo), parse(hi)),
                None => {
                    let n = parse(&spec);
                    (n, n)
                }
            }
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        _ => (1, 1),
    }
}

pub(crate) fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => parse_class(&mut chars, pattern),
            '\\' => match chars.next() {
                Some('P') | Some('p') => {
                    // `\PC` / `\pC`: consume the category letter.
                    let cat = chars.next();
                    assert!(
                        cat == Some('C') || cat == Some('c'),
                        "unsupported escape category in `{pattern}`"
                    );
                    Atom::Printable
                }
                Some(esc @ ('\\' | '.' | '[' | ']' | '{' | '}' | '(' | ')' | '-')) => {
                    Atom::Literal(esc)
                }
                other => panic!("unsupported escape `\\{other:?}` in `{pattern}`"),
            },
            lit => Atom::Literal(lit),
        };
        let (lo, hi) = parse_quantifier(&mut chars, pattern);
        let count = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        for _ in 0..count {
            out.push(atom.generate(rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::generate_from_pattern;
    use crate::test_runner::TestRng;

    #[test]
    fn patterns_generate_matching_strings() {
        let mut rng = TestRng::deterministic("patterns");
        for _ in 0..500 {
            let s = generate_from_pattern("[a-z]{0,6}", &mut rng);
            assert!(
                s.len() <= 6 && s.chars().all(|c| c.is_ascii_lowercase()),
                "{s:?}"
            );

            let s = generate_from_pattern("[A-Z][a-z]{2,8}", &mut rng);
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_uppercase(), "{s:?}");
            let rest: Vec<char> = cs.collect();
            assert!((2..=8).contains(&rest.len()), "{s:?}");
            assert!(rest.iter().all(|c| c.is_ascii_lowercase()), "{s:?}");

            let s = generate_from_pattern("[ -~]{0,12}", &mut rng);
            assert!(s.chars().count() <= 12, "{s:?}");
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");

            let s = generate_from_pattern("\\PC{0,64}", &mut rng);
            assert!(s.chars().count() <= 64, "{s:?}");
        }
    }
}
